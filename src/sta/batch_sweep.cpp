#include "sta/batch_sweep.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/perf_counters.hpp"

namespace rlmul::sta {

using netlist::CellKind;
using netlist::CellLibrary;
using netlist::Gate;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

namespace {
inline std::uint32_t lane_bit(int lane) { return 1u << lane; }
}  // namespace

BatchTimer::BatchTimer(const Netlist& nl, const CellLibrary& lib,
                       const TimingGraph& graph, int lanes,
                       nt::ScratchArena& arena)
    : nl_(nl), lib_(lib), graph_(graph), lanes_(lanes) {
  if (lanes < 1 || lanes > kMaxLanes) {
    throw std::invalid_argument("BatchTimer: lane count out of range");
  }
  num_gates_ = nl.num_gates();
  num_nets_ = nl.num_nets();
  dff_setup_ = lib.setup(CellKind::kDff);
  const std::size_t G = static_cast<std::size_t>(num_gates_);
  const std::size_t N = static_cast<std::size_t>(num_nets_);
  const std::size_t L = static_cast<std::size_t>(lanes_);
  const auto& gates = nl.gates();
  gid_ = graph.topo.data();
  tp_ = graph.topo_pos.data();

  // -- flattened connectivity (CSR over the shared netlist) -----------
  // Per-gate arrays are filled in topological-position order, so the
  // ascending-position sweep reads them (and the CSR payloads they
  // index) sequentially.
  kind_ = arena.alloc_as<std::uint8_t>(G);
  in_base_ = arena.alloc_as<std::int32_t>(G + 1);
  out_base_ = arena.alloc_as<std::int32_t>(G + 1);
  arc_base_ = arena.alloc_as<std::int32_t>(G + 1);
  std::size_t num_in = 0, num_out = 0, num_arc = 0;
  for (std::size_t p = 0; p < G; ++p) {
    const std::size_t g = static_cast<std::size_t>(gid_[p]);
    kind_[p] = static_cast<std::uint8_t>(gates[g].kind);
    in_base_[p] = static_cast<std::int32_t>(num_in);
    out_base_[p] = static_cast<std::int32_t>(num_out);
    arc_base_[p] = static_cast<std::int32_t>(num_arc);
    num_in += gates[g].inputs.size();
    num_out += gates[g].outputs.size();
    num_arc += gates[g].inputs.size() * gates[g].outputs.size();
  }
  in_base_[G] = static_cast<std::int32_t>(num_in);
  out_base_[G] = static_cast<std::int32_t>(num_out);
  arc_base_[G] = static_cast<std::int32_t>(num_arc);
  in_nets_ = arena.alloc_as<std::int32_t>(num_in);
  out_nets_ = arena.alloc_as<std::int32_t>(num_out);
  arc_int_ = arena.alloc_as<double>(num_arc);
  // Arc intrinsics depend on (kind, i, o) only, so build one packed
  // table per kind and copy per gate instead of calling into the
  // library for every arc of every gate (~3 arcs/gate x thousands of
  // gates per construction).
  constexpr int kMaxArcs = 12;  // 4 inputs x 3 outputs (the 4:2 compressor)
  const int nkinds = netlist::num_cell_kinds();
  std::vector<double> kind_arc(static_cast<std::size_t>(nkinds) * kMaxArcs,
                               0.0);
  std::vector<std::int32_t> kind_narc(static_cast<std::size_t>(nkinds), 0);
  for (int k = 0; k < nkinds; ++k) {
    const CellKind ck = static_cast<CellKind>(k);
    const int ni = netlist::num_inputs(ck);
    const int no = netlist::num_outputs(ck);
    kind_narc[static_cast<std::size_t>(k)] = ni * no;
    // intrinsic[o * num_in + i]: grouped per output so the inner input
    // loop of a retime reads contiguously.
    double* arc = kind_arc.data() + static_cast<std::size_t>(k) * kMaxArcs;
    for (int o = 0; o < no; ++o) {
      for (int i = 0; i < ni; ++i) {
        arc[o * ni + i] = lib.intrinsic(ck, i, o);
      }
    }
  }
  for (std::size_t p = 0; p < G; ++p) {
    const Gate& gate = gates[static_cast<std::size_t>(gid_[p])];
    std::int32_t* in = in_nets_ + in_base_[p];
    for (std::size_t i = 0; i < gate.inputs.size(); ++i) in[i] = gate.inputs[i];
    std::int32_t* out = out_nets_ + out_base_[p];
    for (std::size_t o = 0; o < gate.outputs.size(); ++o) {
      out[o] = gate.outputs[o];
    }
    double* arc = arc_int_ + arc_base_[p];
    const double* src = kind_arc.data() + kind_[p] * std::size_t{kMaxArcs};
    const int na = kind_narc[kind_[p]];
    for (int a = 0; a < na; ++a) arc[a] = src[a];
  }

  // -- per-kind drive tables (packed [kind, variant]) -----------------
  const int kinds = netlist::num_cell_kinds();
  kv_base_ = arena.alloc_as<std::int32_t>(static_cast<std::size_t>(kinds) + 1);
  std::size_t kv = 0;
  for (int k = 0; k < kinds; ++k) {
    kv_base_[k] = static_cast<std::int32_t>(kv);
    kv += static_cast<std::size_t>(lib.num_variants(static_cast<CellKind>(k)));
  }
  kv_base_[kinds] = static_cast<std::int32_t>(kv);
  res_ = arena.alloc_as<double>(kv);
  cap_ = arena.alloc_as<double>(kv);
  area_ = arena.alloc_as<double>(kv);
  for (int k = 0; k < kinds; ++k) {
    const CellKind ck = static_cast<CellKind>(k);
    for (int v = 0; v < lib.num_variants(ck); ++v) {
      res_[kv_base_[k] + v] = lib.drive_res(ck, v);
      cap_[kv_base_[k] + v] = lib.input_cap(ck, v);
      area_[kv_base_[k] + v] = lib.area(ck, v);
    }
  }

  // -- per-net structure ----------------------------------------------
  // Borrow the graph's per-net maps where the gate axis is absent; the
  // fanout sinks and drivers are GateIds there, so store renumbered
  // copies — the hot load/mark paths then never gather through
  // topo_pos. CSR entry order is unchanged (still ascending GateId per
  // net), which is what keeps the load summation order identical.
  fo_base_ = graph.fo_base.data();
  wire_ff_ = graph.wire_ff.data();
  po_count_ = graph.po_count.data();
  const std::size_t num_fo = graph.fo_gate.size();
  fo_pos_ = arena.alloc_as<std::int32_t>(num_fo);
  for (std::size_t k = 0; k < num_fo; ++k) {
    fo_pos_[k] = tp_[static_cast<std::size_t>(graph.fo_gate[k])];
  }
  driver_pos_ = arena.alloc_as<std::int32_t>(N);
  for (std::size_t n = 0; n < N; ++n) {
    const std::int32_t drv = graph.driver[n];
    driver_pos_[n] = drv >= 0 ? tp_[static_cast<std::size_t>(drv)] : -1;
  }

  // -- lane slabs ------------------------------------------------------
  load_ = arena.alloc_as<double>(N * L);
  arrival_ = arena.alloc_as<double>(N * L);
  prev_ = arena.alloc_as<std::int32_t>(N * L);
  prev_in_ = arena.alloc_as<std::int32_t>(G * L);
  variant_ = arena.alloc_as<std::int32_t>(G * L);
  slack_ = arena.alloc_as<double>(N * L);
  required_ = arena.alloc_as<double>(N * L);
  mark_ = arena.alloc_as<std::uint32_t>(G);
  bm_ = arena.alloc_as<std::uint64_t>((G + 63) / 64);
  max_po_arrival_ps_ = arena.alloc_as<double>(L);
  min_clock_period_ps_ = arena.alloc_as<double>(L);
  critical_ps_ = arena.alloc_as<double>(L);
  worst_endpoint_ = arena.alloc_as<std::int32_t>(L);

  std::fill(variant_, variant_ + G * L, 0);
  std::fill(mark_, mark_ + G, 0u);
  std::fill(bm_, bm_ + (G + 63) / 64, std::uint64_t{0});
  scan_from_ = num_gates_;

  // -- initial full pass on lane 0, broadcast to every lane ------------
  // Mirrors IncrementalTimer::full_update with all variants at 0; since
  // every lane starts identically, computing once and copying produces
  // the same bits as L private full updates. The pass runs on
  // contiguous single-lane scratch rather than the strided slabs, does
  // not mark (every gate is visited anyway), and skips the variant
  // lookups (every variant is 0) — but performs the same floating-point
  // operations in the same order as retime_masked on lane 0, so the
  // broadcast state is bit-identical to what a per-lane full pass would
  // leave.
  util::perf_counters().sta_full_updates.fetch_add(1,
                                                   std::memory_order_relaxed);
  double* load0 = arena.alloc_as<double>(N);
  double* arr0 = arena.alloc_as<double>(N);
  std::int32_t* prev0 = arena.alloc_as<std::int32_t>(N);
  std::int32_t* pin0 = arena.alloc_as<std::int32_t>(G);
  const double po_load = lib.output_load_ff();
  for (std::size_t n = 0; n < N; ++n) {
    // recompute_load with every variant at 0: pin caps in ascending
    // gate order, one wire-term add, one add per primary output.
    double load = 0.0;
    const std::int32_t lo = fo_base_[n];
    const std::int32_t hi = fo_base_[n + 1];
    for (std::int32_t k = lo; k < hi; ++k) {
      load += cap_[kv_base_[kind_[static_cast<std::size_t>(fo_pos_[k])]]];
    }
    if (hi > lo) load += wire_ff_[n];
    for (std::int32_t i = 0; i < po_count_[n]; ++i) load += po_load;
    load0[n] = load;
    arr0[n] = 0.0;
    prev0[n] = -1;
  }
  for (std::size_t g = 0; g < G; ++g) pin0[g] = netlist::kNoNet;
  for (std::size_t p = 0; p < G; ++p) {
    const CellKind kind = static_cast<CellKind>(kind_[p]);
    if (kind == CellKind::kTieLo || kind == CellKind::kTieHi) continue;
    const double res = res_[kv_base_[kind_[p]]];  // variant 0
    if (kind == CellKind::kDff) {
      const std::size_t q = static_cast<std::size_t>(out_nets_[out_base_[p]]);
      const double t = arc_int_[arc_base_[p]] + res * load0[q];
      prev0[q] = gid_[p];
      if (t != arr0[q]) arr0[q] = t;
      continue;
    }
    const std::int32_t ib = in_base_[p];
    const int ni = in_base_[p + 1] - ib;
    const std::int32_t ob = out_base_[p];
    const int no = out_base_[p + 1] - ob;
    for (int o = 0; o < no; ++o) {
      const std::size_t out = static_cast<std::size_t>(out_nets_[ob + o]);
      const double rl = res * load0[out];
      const double* intr = arc_int_ + arc_base_[p] + o * ni;
      double worst = 0.0;
      std::int32_t worst_in = netlist::kNoNet;
      for (int i = 0; i < ni; ++i) {
        const std::size_t in = static_cast<std::size_t>(in_nets_[ib + i]);
        const double t = arr0[in] + intr[i] + rl;
        if (t > worst) {
          worst = t;
          worst_in = in_nets_[ib + i];
        }
      }
      if (worst > 0.0) {
        prev0[out] = gid_[p];
        pin0[p] = worst_in;
      } else {
        prev0[out] = -1;
      }
      if (worst != arr0[out]) arr0[out] = worst;
    }
  }
  // slack_/required_ need no init: refresh_slacks rewrites a lane's
  // full span before any slack read on that lane.
  for (std::size_t n = 0; n < N; ++n) {
    for (std::size_t l = 0; l < L; ++l) {
      load_[n * L + l] = load0[n];
      arrival_[n * L + l] = arr0[n];
      prev_[n * L + l] = prev0[n];
    }
  }
  for (std::size_t g = 0; g < G; ++g) {
    for (std::size_t l = 0; l < L; ++l) prev_in_[g * L + l] = pin0[g];
  }
  refresh_endpoints(0);
  for (std::size_t l = 1; l < L; ++l) {
    max_po_arrival_ps_[l] = max_po_arrival_ps_[0];
    min_clock_period_ps_[l] = min_clock_period_ps_[0];
    critical_ps_[l] = critical_ps_[0];
    worst_endpoint_[l] = worst_endpoint_[0];
  }
}

double BatchTimer::recompute_load(NetId n, int lane) const {
  // Mirrors IncrementalTimer::recompute_load (itself the mirror of
  // compute_loads): fanout pin caps in ascending gate order (fo_pos_
  // keeps the CSR entry order, renumbered), then the wire term as one
  // add, then one add per primary-output occurrence.
  const std::size_t idx = static_cast<std::size_t>(n);
  const std::size_t L = static_cast<std::size_t>(lanes_);
  double load = 0.0;
  const std::int32_t lo = fo_base_[idx];
  const std::int32_t hi = fo_base_[idx + 1];
  for (std::int32_t k = lo; k < hi; ++k) {
    const std::size_t p = static_cast<std::size_t>(fo_pos_[k]);
    load += cap_[kv_base_[kind_[p]] + variant_[p * L + static_cast<std::size_t>(
                                                           lane)]];
  }
  if (hi > lo) load += wire_ff_[idx];
  for (std::int32_t i = 0; i < po_count_[idx]; ++i) {
    load += lib_.output_load_ff();
  }
  return load;
}

void BatchTimer::mark_pos(int p, std::uint32_t lanes) {
  mark_[static_cast<std::size_t>(p)] |= lanes;
  bm_[static_cast<std::size_t>(p) >> 6] |= std::uint64_t{1} << (p & 63);
  if (p < scan_from_) scan_from_ = p;
}

void BatchTimer::retime_masked(int p, std::uint32_t mask) {
  const std::size_t pi = static_cast<std::size_t>(p);
  const std::size_t L = static_cast<std::size_t>(lanes_);
  const CellKind kind = static_cast<CellKind>(kind_[pi]);
  if (kind == CellKind::kTieLo || kind == CellKind::kTieHi) {
    return;  // constants arrive at time 0
  }
  const std::int32_t kb = kv_base_[kind_[pi]];
  if (kind == CellKind::kDff) {
    const std::size_t q = static_cast<std::size_t>(out_nets_[out_base_[pi]]);
    const double intr = arc_int_[arc_base_[pi]];  // clk-to-Q intrinsic[0][0]
    std::uint32_t changed = 0;
    std::uint32_t m = mask;
    while (m != 0) {
      const int lane = __builtin_ctz(m);
      m &= m - 1;
      const std::size_t ql = q * L + static_cast<std::size_t>(lane);
      const double t = intr + res_[kb + variant_[pi * L + static_cast<
                                                              std::size_t>(
                                                              lane)]] *
                                  load_[ql];
      prev_[ql] = gid_[pi];
      if (t != arrival_[ql]) {
        arrival_[ql] = t;
        changed |= lane_bit(lane);
      }
    }
    if (changed != 0) {
      const std::int32_t lo = fo_base_[q], hi = fo_base_[q + 1];
      for (std::int32_t k = lo; k < hi; ++k) mark_pos(fo_pos_[k], changed);
    }
    return;
  }
  const std::int32_t ib = in_base_[pi];
  const int ni = in_base_[pi + 1] - ib;
  const std::int32_t ob = out_base_[pi];
  const int no = out_base_[pi + 1] - ob;
  for (int o = 0; o < no; ++o) {
    const std::size_t out = static_cast<std::size_t>(out_nets_[ob + o]);
    const double* intr = arc_int_ + arc_base_[pi] + o * ni;
    std::uint32_t changed = 0;
    std::uint32_t m = mask;
    while (m != 0) {
      const int lane = __builtin_ctz(m);
      m &= m - 1;
      const std::size_t ls = static_cast<std::size_t>(lane);
      const double rl = res_[kb + variant_[pi * L + ls]] * load_[out * L + ls];
      double worst = 0.0;
      std::int32_t worst_in = netlist::kNoNet;
      for (int i = 0; i < ni; ++i) {
        const std::size_t in = static_cast<std::size_t>(in_nets_[ib + i]);
        const double t = arrival_[in * L + ls] + intr[i] + rl;
        if (t > worst) {
          worst = t;
          worst_in = in_nets_[ib + i];
        }
      }
      // Same `worst > 0` guard semantics as the single-lane timer: nets
      // are single-driver, so the only competitor is the initial 0.
      const std::size_t ol = out * L + ls;
      if (worst > 0.0) {
        prev_[ol] = gid_[pi];
        prev_in_[pi * L + ls] = worst_in;
      } else {
        prev_[ol] = -1;
      }
      if (worst != arrival_[ol]) {
        arrival_[ol] = worst;
        changed |= lane_bit(lane);
      }
    }
    if (changed != 0) {
      const std::int32_t lo = fo_base_[out], hi = fo_base_[out + 1];
      for (std::int32_t k = lo; k < hi; ++k) mark_pos(fo_pos_[k], changed);
    }
  }
}

void BatchTimer::sweep() {
  std::uint64_t retimed = 0;
  const int W = (num_gates_ + 63) >> 6;
  for (int w = scan_from_ >> 6; w < W; ++w) {
    std::uint64_t bits = bm_[w];
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      const int p = (w << 6) | b;
      // Clear before retiming: retime_masked may mark fanout in this
      // same word (always above bit b), picked up by the reload below.
      bm_[w] = bits & (bits - 1);
      const std::uint32_t m = mark_[static_cast<std::size_t>(p)];
      mark_[static_cast<std::size_t>(p)] = 0;
      retimed += static_cast<std::uint64_t>(__builtin_popcount(m));
      touched_ |= m;
      retime_masked(p, m);
      bits = bm_[w];
    }
  }
  scan_from_ = num_gates_;
  util::perf_counters().sta_gates_retimed.fetch_add(retimed,
                                                    std::memory_order_relaxed);
}

void BatchTimer::update(
    const std::vector<std::vector<GateId>>& resized_by_lane) {
  util::perf_counters().sta_incremental_updates.fetch_add(
      1, std::memory_order_relaxed);
  const std::size_t L = static_cast<std::size_t>(lanes_);
  touched_ = 0;
  for (std::size_t lane = 0; lane < resized_by_lane.size(); ++lane) {
    for (GateId g : resized_by_lane[lane]) {
      const std::size_t pi = pos(g);
      touched_ |= lane_bit(static_cast<int>(lane));
      // The gate's input-pin capacitance changed with the variant, so
      // its fanin nets carry a different load — which changes the arc
      // delays of the gates driving them.
      for (std::int32_t k = in_base_[pi]; k < in_base_[pi + 1]; ++k) {
        const NetId n = in_nets_[k];
        const double load = recompute_load(n, static_cast<int>(lane));
        const std::size_t nl = static_cast<std::size_t>(n) * L + lane;
        if (load != load_[nl]) {
          load_[nl] = load;
          const std::int32_t drv = driver_pos_[static_cast<std::size_t>(n)];
          if (drv >= 0) mark_pos(drv, lane_bit(static_cast<int>(lane)));
        }
      }
      // its drive res changed
      mark_pos(static_cast<int>(pi), lane_bit(static_cast<int>(lane)));
    }
  }
  sweep();
  std::uint32_t t = touched_;
  while (t != 0) {
    const int lane = __builtin_ctz(t);
    t &= t - 1;
    refresh_endpoints(lane);
  }
}

void BatchTimer::refresh_endpoints(int lane) {
  const std::size_t L = static_cast<std::size_t>(lanes_);
  const std::size_t ls = static_cast<std::size_t>(lane);
  double max_po = 0.0;
  std::int32_t worst = netlist::kNoNet;
  for (NetId n : nl_.primary_outputs()) {
    const double t = arrival_[static_cast<std::size_t>(n) * L + ls];
    if (t > max_po) {
      max_po = t;
      worst = n;
    }
  }
  double min_clk = 0.0;
  for (GateId g : graph_.dffs) {
    const NetId d = in_nets_[in_base_[pos(g)]];
    const double t = arrival_[static_cast<std::size_t>(d) * L + ls] + dff_setup_;
    if (t > min_clk) {
      min_clk = t;
      if (t >= max_po) worst = d;
    }
  }
  max_po_arrival_ps_[ls] = max_po;
  min_clock_period_ps_[ls] = min_clk;
  critical_ps_[ls] = std::max(max_po, min_clk);
  worst_endpoint_[ls] = worst;
}

void BatchTimer::critical_path(int lane, std::vector<GateId>& out) const {
  const std::size_t L = static_cast<std::size_t>(lanes_);
  const std::size_t ls = static_cast<std::size_t>(lane);
  out.clear();
  std::int32_t cursor = worst_endpoint_[ls];
  while (cursor != netlist::kNoNet &&
         prev_[static_cast<std::size_t>(cursor) * L + ls] >= 0) {
    const GateId g = prev_[static_cast<std::size_t>(cursor) * L + ls];
    out.push_back(g);
    const std::size_t p = pos(g);  // prev_ stores GateIds; arrays are
    if (static_cast<CellKind>(kind_[p]) == CellKind::kDff) {  // per position
      break;
    }
    cursor = prev_in_[p * L + ls];
  }
  std::reverse(out.begin(), out.end());
}

void BatchTimer::refresh_slacks(const double* target_ps_by_lane) {
  // Mirror of synth's net_slacks_core over lane state: same required-
  // time initialization, same reverse-topological relaxation order.
  // All lanes ride one walk of the shared reverse topo; within each
  // step the lane loop is innermost and each lane executes exactly the
  // per-lane operation sequence (rl product, then one subtract-and-min
  // per input, in ascending input order), so every lane's required
  // times are bit-identical to a dedicated single-lane pass.
  const std::size_t L = static_cast<std::size_t>(lanes_);
  const std::size_t N = static_cast<std::size_t>(num_nets_);
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t x = 0; x < L * N; ++x) required_[x] = inf;
  for (std::size_t l = 0; l < L; ++l) {
    double* req = required_ + l * N;
    for (NetId n : nl_.primary_outputs()) {
      double& r = req[static_cast<std::size_t>(n)];
      r = std::min(r, target_ps_by_lane[l]);
    }
  }
  double rl[kMaxLanes];
  double ro[kMaxLanes];  // req[out] per lane, fixed for the gate's inputs
  // Positions ARE topological order, so the reverse walk is a plain
  // descending loop over contiguous per-position arrays.
  for (std::size_t pi = static_cast<std::size_t>(num_gates_); pi-- > 0;) {
    const CellKind kind = static_cast<CellKind>(kind_[pi]);
    if (kind == CellKind::kDff) {
      const std::size_t d = static_cast<std::size_t>(in_nets_[in_base_[pi]]);
      for (std::size_t l = 0; l < L; ++l) {
        double& r = required_[l * N + d];
        r = std::min(r, target_ps_by_lane[l] - dff_setup_);
      }
      continue;
    }
    const std::int32_t ib = in_base_[pi];
    const int ni = in_base_[pi + 1] - ib;
    const std::int32_t ob = out_base_[pi];
    const int no = out_base_[pi + 1] - ob;
    const std::int32_t kb = kv_base_[kind_[pi]];
    for (int o = 0; o < no; ++o) {
      const std::size_t out = static_cast<std::size_t>(out_nets_[ob + o]);
      std::uint32_t act = 0;
      for (std::size_t l = 0; l < L; ++l) {
        const double req_out = required_[l * N + out];
        if (req_out == inf) continue;
        act |= std::uint32_t{1} << l;
        ro[l] = req_out;
        rl[l] = res_[kb + variant_[pi * L + l]] * load_[out * L + l];
      }
      if (act == 0) continue;
      const double* intr = arc_int_ + arc_base_[pi] + o * ni;
      for (int i = 0; i < ni; ++i) {
        const std::size_t in = static_cast<std::size_t>(in_nets_[ib + i]);
        for (std::size_t l = 0; l < L; ++l) {
          if ((act & (std::uint32_t{1} << l)) == 0) continue;
          const double req_in = ro[l] - intr[i] - rl[l];
          double& r = required_[l * N + in];
          r = std::min(r, req_in);
        }
      }
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    const double* req = required_ + l * N;
    double* slk = slack_ + l * N;
    for (std::size_t n = 0; n < N; ++n) {
      const double r = req[n];
      slk[n] = r != inf ? r - arrival_[n * L + l] : inf;
    }
  }
}

}  // namespace rlmul::sta
