#pragma once
// Lane-parallel incremental STA: L independent timing states ("lanes")
// over one shared netlist structure. A lane is one (design, target)
// sizing trajectory; all lanes share the connectivity, the topological
// order and the wire model, and differ only in their gate-variant
// assignment — exactly the situation the multi-constraint evaluator is
// in when it sizes one prepared netlist against every delay target.
//
// Bit-exactness contract: lane l's loads, arrivals, critical delay and
// critical path are bit-identical to an IncrementalTimer over a private
// netlist copy whose gate variants equal variant(l, g). Every floating
// point operation mirrors incremental.cpp in the same order: load
// recomputation sums fanout pin caps in ascending gate order, then one
// wire-term add, then one add per primary-output occurrence; arc
// arrivals use `t > worst` (strict), the `worst > 0.0` prev guard and
// the `worst != arrival` change test. The property tests in
// tests/test_batch_eval.cpp enforce this against the single-design
// path, the same way the incremental-STA tests pin IncrementalTimer to
// sta::analyze.
//
// Layout: every per-net / per-gate quantity is a structure-of-arrays
// slab indexed [node * lanes + lane], carved from a caller-owned
// nt::ScratchArena, so a steady-state batch performs zero heap
// allocations and the lane axis is contiguous (the strided sweeps walk
// the topological order once and touch all marked lanes of a node
// together).
//
// Gate axis: internally every per-gate array is indexed by *topological
// position*, not GateId — the sweep pops marked positions in ascending
// order, so consecutive retimes read consecutive slots of kind_, the
// CSR bases, the arc intrinsics and the variant slab instead of
// gathering through graph.topo. Fanout sinks and net drivers are stored
// pre-renumbered (fo_pos_/driver_pos_), so the hot paths never touch
// topo_pos; only the GateId-keyed public accessors and the cold
// critical-path trace convert through it. Renumbering permutes storage
// only — every floating-point operation still runs on the same values
// in the same order, so the bit-exactness contract is unaffected.

#include <cstdint>
#include <vector>

#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "nt/arena.hpp"
#include "sta/sta.hpp"

namespace rlmul::sta {

class BatchTimer {
 public:
  /// Lane masks are 32-bit.
  static constexpr int kMaxLanes = 32;

  /// Builds the flattened structure (CSR connectivity, per-kind variant
  /// tables, per-gate arc intrinsics) from `nl` + `graph` and runs one
  /// full timing pass with all variants at 0, broadcast to every lane —
  /// the state an IncrementalTimer constructor would produce per lane.
  /// `graph` must describe `nl`; both must outlive the timer, as must
  /// `arena` (all slabs live in it until its next reset()).
  BatchTimer(const netlist::Netlist& nl, const netlist::CellLibrary& lib,
             const TimingGraph& graph, int lanes, nt::ScratchArena& arena);

  BatchTimer(const BatchTimer&) = delete;
  BatchTimer& operator=(const BatchTimer&) = delete;

  int lanes() const { return lanes_; }
  int num_gates() const { return num_gates_; }
  int num_nets() const { return num_nets_; }

  int variant(int lane, netlist::GateId g) const {
    return variant_[pos(g) * static_cast<std::size_t>(lanes_) +
                    static_cast<std::size_t>(lane)];
  }
  /// Callers record the changed gates and pass them to update() — the
  /// timer itself does not track dirtiness across set_variant calls.
  void set_variant(int lane, netlist::GateId g, int v) {
    variant_[pos(g) * static_cast<std::size_t>(lanes_) +
             static_cast<std::size_t>(lane)] = static_cast<std::int32_t>(v);
  }

  double critical_ps(int lane) const {
    return critical_ps_[static_cast<std::size_t>(lane)];
  }
  double load_ff(int lane, netlist::NetId n) const {
    return load_[static_cast<std::size_t>(n) * static_cast<std::size_t>(lanes_) +
                 static_cast<std::size_t>(lane)];
  }
  double arrival_ps(int lane, netlist::NetId n) const {
    return arrival_[static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(lanes_) +
                    static_cast<std::size_t>(lane)];
  }
  /// Net-indexed lane slab for bulk load snapshots; stride == lanes().
  /// (The variant slab is topo-renumbered internally — snapshot
  /// variants through variant(lane, g) instead.)
  const double* load_slab() const { return load_; }

  /// Placed area of gate g at its lane-l variant, from the packed
  /// library table (the same double lib.area(kind, variant) returns, so
  /// sums built from it match netlist_area bit for bit).
  double area(int lane, netlist::GateId g) const {
    const std::size_t p = pos(g);
    return area_[static_cast<std::size_t>(kv_base_[kind_[p]]) +
                 static_cast<std::size_t>(
                     variant_[p * static_cast<std::size_t>(lanes_) +
                              static_cast<std::size_t>(lane)])];
  }
  /// drive_res(kind(g), v) from the packed table — bit-identical to the
  /// library call; the area-recovery penalty reads two per candidate.
  double drive_res(netlist::GateId g, int v) const {
    return res_[static_cast<std::size_t>(kv_base_[kind_[pos(g)]]) +
                static_cast<std::size_t>(v)];
  }
  /// lib.num_variants(kind(g)) from the packed table (the upsize loops
  /// ask this for every gate on every pass).
  int num_variants(netlist::GateId g) const {
    const int k = kind_[pos(g)];
    return kv_base_[k + 1] - kv_base_[k];
  }

  /// Incremental sweep after variant edits: resized_by_lane[l] lists
  /// the gates whose variant changed on lane l since the last sweep, in
  /// the order they were resized (the order IncrementalTimer::update
  /// receives them in). One masked pass over the shared topological
  /// order re-times every affected (gate, lane) exactly once.
  void update(
      const std::vector<std::vector<netlist::GateId>>& resized_by_lane);

  /// Gates on lane l's critical path, source to endpoint (mirror of
  /// IncrementalTimer::critical_path, into a caller buffer).
  void critical_path(int lane, std::vector<netlist::GateId>& out) const;

  /// Backward required-time pass for every lane at its own target —
  /// the mirror of synth's net_slacks_core over lane state, walking
  /// the shared reverse topological order once with all lanes strided
  /// (each lane's arithmetic is the exact per-lane sequence, so the
  /// results are bit-identical to one pass per lane).
  /// `target_ps_by_lane` has lanes() entries; slack(lane, n) is valid
  /// until the next refresh.
  void refresh_slacks(const double* target_ps_by_lane);
  double slack(int lane, netlist::NetId n) const {
    return slack_[static_cast<std::size_t>(lane) *
                      static_cast<std::size_t>(num_nets_) +
                  static_cast<std::size_t>(n)];
  }

 private:
  /// Topological position of gate g — the internal per-gate index.
  std::size_t pos(netlist::GateId g) const {
    return static_cast<std::size_t>(tp_[static_cast<std::size_t>(g)]);
  }
  double recompute_load(netlist::NetId n, int lane) const;
  /// Re-times all outputs of the gate at topological position p on
  /// every lane in `mask`; marks the fanout of changed nets. Lanes are
  /// independent (no cross-lane arithmetic), so each lane's operations
  /// are bit-identical however the lane loop is nested; the
  /// implementation iterates outputs outermost to mark each changed
  /// net's fanout once with the combined changed-lane mask instead of
  /// once per lane.
  void retime_masked(int p, std::uint32_t mask);
  /// Records that the gate at topological position p needs a retime on
  /// every lane in `lanes`.
  void mark_pos(int p, std::uint32_t lanes);
  void sweep();
  void refresh_endpoints(int lane);

  const netlist::Netlist& nl_;
  const netlist::CellLibrary& lib_;
  const TimingGraph& graph_;
  int lanes_ = 0;
  int num_gates_ = 0;
  int num_nets_ = 0;
  double dff_setup_ = 0.0;  ///< lib.setup(kDff), hoisted

  // Flattened, lane-independent structure (arena-backed). All per-gate
  // arrays are indexed by topological position; gid_/tp_ (borrowed from
  // the TimingGraph) translate at the API and critical-path boundaries.
  const std::int32_t* gid_ = nullptr;  ///< per position: original GateId
  const int* tp_ = nullptr;            ///< per gate: topological position
  std::uint8_t* kind_ = nullptr;       ///< per position
  std::int32_t* in_base_ = nullptr;    ///< per position+1: CSR into in_nets_
  std::int32_t* out_base_ = nullptr;   ///< per position+1: CSR into out_nets_
  std::int32_t* in_nets_ = nullptr;
  std::int32_t* out_nets_ = nullptr;
  std::int32_t* arc_base_ = nullptr;   ///< per position: CSR into arc_int_
  double* arc_int_ = nullptr;          ///< intrinsic[o * num_in + i]
  std::int32_t* kv_base_ = nullptr;    ///< per cell kind: into res_/cap_
  double* res_ = nullptr;              ///< drive_res[kind, variant] packed
  double* cap_ = nullptr;              ///< input_cap[kind, variant] packed
  double* area_ = nullptr;             ///< area[kind, variant] packed
  const std::int32_t* fo_base_ = nullptr;   ///< per net+1: CSR (borrowed
                                            ///<   from the TimingGraph)
  std::int32_t* fo_pos_ = nullptr;     ///< fanout sinks, renumbered
  std::int32_t* driver_pos_ = nullptr; ///< per net: driver position, -1=PI
  const double* wire_ff_ = nullptr;         ///< per net (borrowed)
  const std::int32_t* po_count_ = nullptr;  ///< per net (borrowed)

  // Lane state slabs, indexed [node * lanes_ + lane].
  double* load_ = nullptr;
  double* arrival_ = nullptr;
  std::int32_t* prev_ = nullptr;     ///< per net: GateId that set arrival
  std::int32_t* prev_in_ = nullptr;  ///< per position: worst input net
  std::int32_t* variant_ = nullptr;  ///< per position
  // refresh_slacks state. Both arrays are private to that pass (slack
  // values are only meaningful after a refresh on the lane), so they
  // are laid out [lane][net] — contiguous per lane — rather than
  // interleaved like the shared slabs.
  double* slack_ = nullptr;
  double* required_ = nullptr;

  // Sweep working state. The worklist is a bitmap over topological
  // positions (bit p set = the gate at position p has marked lanes):
  // sweeping scans the words in order and pops set bits lowest-first,
  // which visits marked gates in exactly the ascending-position order a
  // linear scan over the topological order would — but a whole word of
  // 64 unmarked positions costs one load. Retiming only marks fanout,
  // which sits at strictly greater positions, so a popped bit never
  // re-sets behind the scan cursor.
  std::uint32_t* mark_ = nullptr;  ///< per position: lanes needing a retime
  std::uint64_t* bm_ = nullptr;    ///< marked topo positions, 64 per word
  int scan_from_ = 0;              ///< lowest possibly-marked position
  std::uint32_t touched_ = 0;

  // Per-lane endpoint summary (mirrors refresh_endpoints).
  double* max_po_arrival_ps_ = nullptr;
  double* min_clock_period_ps_ = nullptr;
  double* critical_ps_ = nullptr;
  std::int32_t* worst_endpoint_ = nullptr;
};

}  // namespace rlmul::sta
