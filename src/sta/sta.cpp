#include "sta/sta.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/perf_counters.hpp"

namespace rlmul::sta {

using netlist::CellKind;
using netlist::CellLibrary;
using netlist::Gate;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

std::vector<double> compute_loads(const Netlist& nl, const CellLibrary& lib) {
  std::vector<double> load(static_cast<std::size_t>(nl.num_nets()), 0.0);
  for (const Gate& g : nl.gates()) {
    for (NetId n : g.inputs) {
      load[static_cast<std::size_t>(n)] += lib.input_cap(g.kind, g.variant);
    }
  }
  // Wire model: fixed stub plus a per-fanout increment.
  std::vector<int> fanout_count(static_cast<std::size_t>(nl.num_nets()), 0);
  for (const Gate& g : nl.gates()) {
    for (NetId n : g.inputs) ++fanout_count[static_cast<std::size_t>(n)];
  }
  for (std::size_t n = 0; n < load.size(); ++n) {
    if (fanout_count[n] > 0) {
      load[n] += lib.wire_cap_fixed_ff() +
                 lib.wire_cap_per_fanout_ff() * fanout_count[n];
    }
  }
  for (NetId n : nl.primary_outputs()) {
    load[static_cast<std::size_t>(n)] += lib.output_load_ff();
  }
  return load;
}

TimingReport analyze(const Netlist& nl, const CellLibrary& lib) {
  util::perf_counters().sta_full_updates.fetch_add(
      1, std::memory_order_relaxed);
  TimingReport rep;
  rep.load_ff = compute_loads(nl, lib);
  rep.arrival_ps.assign(static_cast<std::size_t>(nl.num_nets()), 0.0);

  // prev[net] = gate whose output set the max arrival on the net.
  std::vector<GateId> prev(static_cast<std::size_t>(nl.num_nets()), -1);
  // prev_in[gate] = input net on the gate's worst arc.
  std::vector<NetId> prev_in(static_cast<std::size_t>(nl.num_gates()),
                             netlist::kNoNet);

  const auto order = nl.topo_order();
  bool has_dff = false;

  for (GateId g : order) {
    const Gate& gate = nl.gates()[static_cast<std::size_t>(g)];
    if (gate.kind == CellKind::kDff) {
      has_dff = true;
      const NetId q = gate.outputs[0];
      rep.arrival_ps[static_cast<std::size_t>(q)] =
          lib.intrinsic(CellKind::kDff, 0, 0) +
          lib.drive_res(CellKind::kDff, gate.variant) *
              rep.load_ff[static_cast<std::size_t>(q)];
      prev[static_cast<std::size_t>(q)] = g;
      continue;
    }
    if (gate.kind == CellKind::kTieLo || gate.kind == CellKind::kTieHi) {
      continue;  // constants arrive at time 0
    }
    for (int o = 0; o < static_cast<int>(gate.outputs.size()); ++o) {
      const NetId out = gate.outputs[static_cast<std::size_t>(o)];
      const double rl = lib.drive_res(gate.kind, gate.variant) *
                        rep.load_ff[static_cast<std::size_t>(out)];
      double worst = 0.0;
      NetId worst_in = netlist::kNoNet;
      for (int i = 0; i < static_cast<int>(gate.inputs.size()); ++i) {
        const NetId in = gate.inputs[static_cast<std::size_t>(i)];
        const double t = rep.arrival_ps[static_cast<std::size_t>(in)] +
                         lib.intrinsic(gate.kind, i, o) + rl;
        if (t > worst) {
          worst = t;
          worst_in = in;
        }
      }
      if (worst > rep.arrival_ps[static_cast<std::size_t>(out)]) {
        rep.arrival_ps[static_cast<std::size_t>(out)] = worst;
        prev[static_cast<std::size_t>(out)] = g;
        prev_in[static_cast<std::size_t>(g)] = worst_in;
      }
    }
  }

  NetId worst_endpoint = netlist::kNoNet;
  for (NetId n : nl.primary_outputs()) {
    const double t = rep.arrival_ps[static_cast<std::size_t>(n)];
    if (t > rep.max_po_arrival_ps) {
      rep.max_po_arrival_ps = t;
      worst_endpoint = n;
    }
  }
  if (has_dff) {
    for (const Gate& gate : nl.gates()) {
      if (gate.kind != CellKind::kDff) continue;
      const NetId d = gate.inputs[0];
      const double t = rep.arrival_ps[static_cast<std::size_t>(d)] +
                       lib.setup(CellKind::kDff);
      if (t > rep.min_clock_period_ps) {
        rep.min_clock_period_ps = t;
        if (t >= rep.max_po_arrival_ps) worst_endpoint = d;
      }
    }
  }
  rep.critical_ps = std::max(rep.max_po_arrival_ps, rep.min_clock_period_ps);

  // Trace the critical path back through worst-arc predecessors.
  NetId cursor = worst_endpoint;
  while (cursor != netlist::kNoNet &&
         prev[static_cast<std::size_t>(cursor)] >= 0) {
    const GateId g = prev[static_cast<std::size_t>(cursor)];
    rep.critical_path.push_back(g);
    if (nl.gates()[static_cast<std::size_t>(g)].kind == CellKind::kDff) break;
    cursor = prev_in[static_cast<std::size_t>(g)];
  }
  std::reverse(rep.critical_path.begin(), rep.critical_path.end());
  return rep;
}

std::string report_timing(const Netlist& nl, const CellLibrary& lib) {
  const TimingReport rep = analyze(nl, lib);
  std::ostringstream os;
  os << "Startpoint-to-endpoint worst path (" << rep.critical_ps
     << " ps critical";
  if (rep.min_clock_period_ps > 0.0) {
    os << ", min clock period " << rep.min_clock_period_ps << " ps";
  }
  os << ")\n";
  os << "  incr(ps)  total(ps)  cell\n";
  double prev = 0.0;
  for (GateId g : rep.critical_path) {
    const Gate& gate = nl.gates()[static_cast<std::size_t>(g)];
    // Report the worst arrival over the gate's outputs.
    double arrive = 0.0;
    for (NetId out : gate.outputs) {
      arrive = std::max(arrive, rep.arrival_ps[static_cast<std::size_t>(out)]);
    }
    char line[96];
    std::snprintf(line, sizeof(line), "  %8.1f  %9.1f  %s_X%d g%d\n",
                  arrive - prev, arrive, cell_kind_name(gate.kind),
                  1 << gate.variant, g);
    os << line;
    prev = arrive;
  }
  return os.str();
}

}  // namespace rlmul::sta
