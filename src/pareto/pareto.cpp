#include "pareto/pareto.hpp"

#include <algorithm>

namespace rlmul::pareto {

bool dominates(const Point& p, const Point& q) {
  return p.x <= q.x && p.y <= q.y && (p.x < q.x || p.y < q.y);
}

bool Front::insert(Point p) {
  for (const Point& q : points_) {
    if (dominates(q, p) || (q.x == p.x && q.y == p.y)) return false;
  }
  std::erase_if(points_, [&](const Point& q) { return dominates(p, q); });
  points_.push_back(p);
  return true;
}

std::vector<Point> Front::sorted() const {
  std::vector<Point> out = points_;
  std::sort(out.begin(), out.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  return out;
}

bool Front::covered(const Point& p) const {
  for (const Point& q : points_) {
    if (dominates(q, p) || (q.x == p.x && q.y == p.y)) return true;
  }
  return false;
}

std::vector<Point> pareto_filter(const std::vector<Point>& pts) {
  Front f;
  for (const Point& p : pts) f.insert(p);
  return f.sorted();
}

double hypervolume(const std::vector<Point>& front, double ref_x,
                   double ref_y) {
  std::vector<Point> pts;
  for (const Point& p : front) {
    if (p.x <= ref_x && p.y <= ref_y) pts.push_back(p);
  }
  pts = pareto_filter(pts);  // sorted by x ascending, y strictly descending
  double hv = 0.0;
  double prev_y = ref_y;
  for (const Point& p : pts) {
    hv += (ref_x - p.x) * (prev_y - p.y);
    prev_y = p.y;
  }
  return hv;
}

}  // namespace rlmul::pareto
