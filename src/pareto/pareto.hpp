#pragma once
// Pareto-frontier bookkeeping and the hypervolume indicator used for
// Figs 9-11, 13 and 14. Two objectives, both minimized (area, delay).

#include <cstddef>
#include <vector>

namespace rlmul::pareto {

struct Point {
  double x = 0.0;  ///< first objective (area)
  double y = 0.0;  ///< second objective (delay)
  std::size_t payload = 0;  ///< caller-defined handle (design id, ...)

  bool operator==(const Point&) const = default;
};

/// p dominates q when it is no worse in both objectives and strictly
/// better in at least one.
bool dominates(const Point& p, const Point& q);

/// Maintains the set of non-dominated points under minimization.
class Front {
 public:
  /// Inserts a candidate. Returns true when the point enters the front
  /// (dominated points are evicted); false when it is dominated.
  bool insert(Point p);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /// Points sorted by x ascending (hence y descending).
  std::vector<Point> sorted() const;

  const std::vector<Point>& points() const { return points_; }

  /// True when any member dominates p or equals it in both objectives.
  bool covered(const Point& p) const;

 private:
  std::vector<Point> points_;
};

/// Extracts the non-dominated subset of arbitrary points.
std::vector<Point> pareto_filter(const std::vector<Point>& pts);

/// 2-D hypervolume: area of the region dominated by the front and
/// bounded by the reference point (ref must be weakly worse than every
/// point; points outside are clipped out).
double hypervolume(const std::vector<Point>& front, double ref_x,
                   double ref_y);

}  // namespace rlmul::pareto
