#include "netlist/netlist.hpp"

#include <stdexcept>

namespace rlmul::netlist {

int num_inputs(CellKind kind) {
  switch (kind) {
    case CellKind::kInv:
    case CellKind::kBuf:
    case CellKind::kDff:
      return 1;
    case CellKind::kNand2:
    case CellKind::kNor2:
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kXor2:
    case CellKind::kXnor2:
    case CellKind::kHa:
      return 2;
    case CellKind::kAnd3:
    case CellKind::kOr3:
    case CellKind::kAoi21:
    case CellKind::kOai21:
    case CellKind::kMux2:
    case CellKind::kFa:
      return 3;
    case CellKind::kC42:
      return 4;
    case CellKind::kTieLo:
    case CellKind::kTieHi:
      return 0;
  }
  return 0;
}

int num_outputs(CellKind kind) {
  switch (kind) {
    case CellKind::kFa:
    case CellKind::kHa:
      return 2;
    case CellKind::kC42:
      return 3;
    default:
      return 1;
  }
}

const char* cell_kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kInv: return "INV";
    case CellKind::kBuf: return "BUF";
    case CellKind::kNand2: return "NAND2";
    case CellKind::kNor2: return "NOR2";
    case CellKind::kAnd2: return "AND2";
    case CellKind::kOr2: return "OR2";
    case CellKind::kAnd3: return "AND3";
    case CellKind::kOr3: return "OR3";
    case CellKind::kXor2: return "XOR2";
    case CellKind::kXnor2: return "XNOR2";
    case CellKind::kAoi21: return "AOI21";
    case CellKind::kOai21: return "OAI21";
    case CellKind::kMux2: return "MUX2";
    case CellKind::kFa: return "FA";
    case CellKind::kHa: return "HA";
    case CellKind::kC42: return "C42";
    case CellKind::kDff: return "DFF";
    case CellKind::kTieLo: return "TIELO";
    case CellKind::kTieHi: return "TIEHI";
  }
  return "?";
}

int num_cell_kinds() { return static_cast<int>(CellKind::kTieHi) + 1; }

NetId Netlist::new_net() { return next_net_++; }

std::vector<NetId> Netlist::new_nets(int n) {
  std::vector<NetId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(new_net());
  return out;
}

GateId Netlist::add_gate(CellKind kind, PinList inputs) {
  PinList outs;
  for (int i = 0; i < num_outputs(kind); ++i) outs.push_back(new_net());
  return add_gate_onto(kind, inputs, outs);
}

GateId Netlist::add_gate_onto(CellKind kind, PinList inputs,
                              PinList outputs) {
  if (static_cast<int>(inputs.size()) != num_inputs(kind) ||
      static_cast<int>(outputs.size()) != num_outputs(kind)) {
    throw std::invalid_argument("add_gate: wrong pin count for cell kind");
  }
  for (NetId n : inputs) {
    if (n < 0 || n >= next_net_) {
      throw std::invalid_argument("add_gate: invalid input net");
    }
  }
  Gate g;
  g.kind = kind;
  g.inputs = inputs;
  g.outputs = outputs;
  gates_.push_back(g);
  return static_cast<GateId>(gates_.size()) - 1;
}

NetId Netlist::add_input(const std::string& name) {
  const NetId n = new_net();
  inputs_.push_back(n);
  input_names_.push_back(name);
  return n;
}

void Netlist::mark_output(NetId net, const std::string& name) {
  outputs_.push_back(net);
  output_names_.push_back(name);
}

NetId Netlist::tie_lo() {
  if (tie_lo_ == kNoNet) {
    const GateId g = add_gate(CellKind::kTieLo, {});
    tie_lo_ = gates_[static_cast<std::size_t>(g)].outputs[0];
  }
  return tie_lo_;
}

NetId Netlist::tie_hi() {
  if (tie_hi_ == kNoNet) {
    const GateId g = add_gate(CellKind::kTieHi, {});
    tie_hi_ = gates_[static_cast<std::size_t>(g)].outputs[0];
  }
  return tie_hi_;
}

Netlist Netlist::clone_head(int head_gates, int head_nets) const {
  if (head_gates > num_gates() || head_nets > next_net_) {
    throw std::invalid_argument("clone_head: region exceeds netlist");
  }
  Netlist out;
  out.next_net_ = head_nets;
  out.gates_.assign(gates_.begin(), gates_.begin() + head_gates);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i] < head_nets) {
      out.inputs_.push_back(inputs_[i]);
      out.input_names_.push_back(input_names_[i]);
    }
  }
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    if (outputs_[i] < head_nets) {
      out.outputs_.push_back(outputs_[i]);
      out.output_names_.push_back(output_names_[i]);
    }
  }
  if (tie_lo_ != kNoNet && tie_lo_ < head_nets) out.tie_lo_ = tie_lo_;
  if (tie_hi_ != kNoNet && tie_hi_ < head_nets) out.tie_hi_ = tie_hi_;
  return out;
}

std::vector<GateId> Netlist::driver_gate() const {
  std::vector<GateId> drv(static_cast<std::size_t>(next_net_), -1);
  for (GateId g = 0; g < num_gates(); ++g) {
    for (NetId n : gates_[static_cast<std::size_t>(g)].outputs) {
      drv[static_cast<std::size_t>(n)] = g;
    }
  }
  return drv;
}

std::vector<std::vector<std::pair<GateId, int>>> Netlist::fanout() const {
  std::vector<std::vector<std::pair<GateId, int>>> fo(
      static_cast<std::size_t>(next_net_));
  for (GateId g = 0; g < num_gates(); ++g) {
    const auto& ins = gates_[static_cast<std::size_t>(g)].inputs;
    for (int pin = 0; pin < static_cast<int>(ins.size()); ++pin) {
      fo[static_cast<std::size_t>(ins[static_cast<std::size_t>(pin)])]
          .emplace_back(g, pin);
    }
  }
  return fo;
}

void Netlist::fanout_csr(std::vector<std::int32_t>& fo_base,
                         std::vector<GateId>& fo_gate) const {
  fo_base.assign(static_cast<std::size_t>(next_net_) + 1, 0);
  std::size_t pins = 0;
  for (const Gate& g : gates_) {
    for (NetId n : g.inputs) ++fo_base[static_cast<std::size_t>(n) + 1];
    pins += g.inputs.size();
  }
  for (std::size_t n = 1; n < fo_base.size(); ++n) fo_base[n] += fo_base[n - 1];
  fo_gate.resize(pins);
  std::vector<std::int32_t> cursor(fo_base.begin(), fo_base.end() - 1);
  for (GateId g = 0; g < num_gates(); ++g) {
    for (NetId n : gates_[static_cast<std::size_t>(g)].inputs) {
      fo_gate[static_cast<std::size_t>(cursor[static_cast<std::size_t>(n)]++)] =
          g;
    }
  }
}

std::vector<GateId> Netlist::topo_order() const {
  std::vector<std::int32_t> fo_base;
  std::vector<GateId> fo_gate;
  fanout_csr(fo_base, fo_gate);
  return topo_order(driver_gate(), fo_base, fo_gate);
}

std::vector<GateId> Netlist::topo_order(
    const std::vector<GateId>& drv, const std::vector<std::int32_t>& fo_base,
    const std::vector<GateId>& fo_gate) const {
  // Kahn's algorithm over gates. DFF data inputs do not create
  // combinational dependencies for the DFF's *output* (the Q net is a
  // timing source), so DFFs start with indegree 0.
  std::vector<int> indeg(gates_.size(), 0);
  for (GateId g = 0; g < num_gates(); ++g) {
    const auto& gate = gates_[static_cast<std::size_t>(g)];
    if (gate.kind == CellKind::kDff) continue;
    for (NetId n : gate.inputs) {
      if (drv[static_cast<std::size_t>(n)] >= 0) {
        ++indeg[static_cast<std::size_t>(g)];
      }
    }
  }
  // `order` doubles as the FIFO ready queue (same visit order as a
  // std::queue, without the deque's chunked allocation): gates are
  // appended when their indegree hits zero and consumed left to right.
  std::vector<GateId> order;
  order.reserve(gates_.size());
  for (GateId g = 0; g < num_gates(); ++g) {
    if (indeg[static_cast<std::size_t>(g)] == 0) order.push_back(g);
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    const GateId g = order[head];
    for (NetId n : gates_[static_cast<std::size_t>(g)].outputs) {
      const std::int32_t lo = fo_base[static_cast<std::size_t>(n)];
      const std::int32_t hi = fo_base[static_cast<std::size_t>(n) + 1];
      for (std::int32_t k = lo; k < hi; ++k) {
        const GateId sink = fo_gate[static_cast<std::size_t>(k)];
        if (gates_[static_cast<std::size_t>(sink)].kind == CellKind::kDff) {
          continue;  // never enqueued via inputs
        }
        if (--indeg[static_cast<std::size_t>(sink)] == 0) order.push_back(sink);
      }
    }
  }
  if (order.size() != gates_.size()) {
    throw std::runtime_error("topo_order: combinational cycle detected");
  }
  return order;
}

std::vector<int> Netlist::kind_histogram() const {
  std::vector<int> hist(static_cast<std::size_t>(num_cell_kinds()), 0);
  for (const auto& g : gates_) {
    ++hist[static_cast<std::size_t>(g.kind)];
  }
  return hist;
}

}  // namespace rlmul::netlist
