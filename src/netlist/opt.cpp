#include "netlist/opt.hpp"

#include <stdexcept>

#include "netlist/cell_library.hpp"
#include "netlist/logic_builder.hpp"

namespace rlmul::netlist {

namespace {

/// Rebuilds the netlist through the folding LogicBuilder, mapping every
/// old net to a Signal (constant or new net).
Netlist rebuild_folded(const Netlist& nl, int* folded) {
  Netlist out;
  LogicBuilder lb(out);
  std::vector<Signal> map(static_cast<std::size_t>(nl.num_nets()),
                          Signal::lo());

  const auto& in_names = nl.input_names();
  const auto& ins = nl.primary_inputs();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    map[static_cast<std::size_t>(ins[i])] =
        Signal::of(out.add_input(in_names[i]));
  }

  // DFF Q nets need their handles before the topological walk (a DFF
  // output can feed logic that precedes the DFF in gate order).
  std::vector<NetId> dff_q(nl.gates().size(), kNoNet);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gates()[static_cast<std::size_t>(g)];
    if (gate.kind == CellKind::kDff) {
      const NetId q = out.new_net();
      dff_q[static_cast<std::size_t>(g)] = q;
      map[static_cast<std::size_t>(gate.outputs[0])] = Signal::of(q);
    }
  }

  int fold_count = 0;
  for (GateId g : nl.topo_order()) {
    const Gate& gate = nl.gates()[static_cast<std::size_t>(g)];
    auto in = [&](int i) {
      return map[static_cast<std::size_t>(
          gate.inputs[static_cast<std::size_t>(i)])];
    };
    auto set = [&](int o, Signal s) {
      map[static_cast<std::size_t>(
          gate.outputs[static_cast<std::size_t>(o)])] = s;
      if (s.is_const()) ++fold_count;
    };
    switch (gate.kind) {
      case CellKind::kInv: set(0, lb.inv(in(0))); break;
      case CellKind::kBuf: set(0, in(0)); break;
      case CellKind::kNand2: set(0, lb.inv(lb.and2(in(0), in(1)))); break;
      case CellKind::kNor2: set(0, lb.inv(lb.or2(in(0), in(1)))); break;
      case CellKind::kAnd2: set(0, lb.and2(in(0), in(1))); break;
      case CellKind::kOr2: set(0, lb.or2(in(0), in(1))); break;
      case CellKind::kAnd3:
        set(0, lb.and2(lb.and2(in(0), in(1)), in(2)));
        break;
      case CellKind::kOr3:
        set(0, lb.or2(lb.or2(in(0), in(1)), in(2)));
        break;
      case CellKind::kXor2: set(0, lb.xor2(in(0), in(1))); break;
      case CellKind::kXnor2: set(0, lb.xnor2(in(0), in(1))); break;
      case CellKind::kAoi21:
        set(0, lb.inv(lb.or2(lb.and2(in(0), in(1)), in(2))));
        break;
      case CellKind::kOai21:
        set(0, lb.inv(lb.and2(lb.or2(in(0), in(1)), in(2))));
        break;
      case CellKind::kMux2: set(0, lb.mux2(in(0), in(1), in(2))); break;
      case CellKind::kFa: {
        const auto r = lb.full_add(in(0), in(1), in(2));
        set(0, r.sum);
        set(1, r.carry);
        break;
      }
      case CellKind::kHa: {
        const auto r = lb.half_add(in(0), in(1));
        set(0, r.sum);
        set(1, r.carry);
        break;
      }
      case CellKind::kC42: {
        const auto r = lb.compress42(in(0), in(1), in(2), in(3));
        set(0, r.sum);
        set(1, r.carry1);
        set(2, r.carry2);
        break;
      }
      case CellKind::kDff:
        out.add_gate_onto(CellKind::kDff, {lb.materialize(in(0))},
                          {dff_q[static_cast<std::size_t>(g)]});
        break;
      case CellKind::kTieLo:
        map[static_cast<std::size_t>(gate.outputs[0])] = Signal::lo();
        break;
      case CellKind::kTieHi:
        map[static_cast<std::size_t>(gate.outputs[0])] = Signal::hi();
        break;
    }
  }

  const auto& out_names = nl.output_names();
  const auto& outs = nl.primary_outputs();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    out.mark_output(lb.materialize(map[static_cast<std::size_t>(outs[i])]),
                    out_names[i]);
  }
  if (folded != nullptr) *folded = fold_count;
  return out;
}

/// Copies only gates whose outputs (transitively) reach a primary
/// output. DFFs stay only if their Q is live; their D cones follow.
Netlist sweep_dead(const Netlist& nl) {
  std::vector<bool> net_live(static_cast<std::size_t>(nl.num_nets()), false);
  std::vector<bool> gate_live(nl.gates().size(), false);
  const auto drv = nl.driver_gate();

  std::vector<NetId> work(nl.primary_outputs());
  while (!work.empty()) {
    const NetId n = work.back();
    work.pop_back();
    if (net_live[static_cast<std::size_t>(n)]) continue;
    net_live[static_cast<std::size_t>(n)] = true;
    const GateId g = drv[static_cast<std::size_t>(n)];
    if (g < 0 || gate_live[static_cast<std::size_t>(g)]) continue;
    gate_live[static_cast<std::size_t>(g)] = true;
    for (NetId in : nl.gates()[static_cast<std::size_t>(g)].inputs) {
      work.push_back(in);
    }
  }

  Netlist out;
  std::vector<NetId> map(static_cast<std::size_t>(nl.num_nets()), kNoNet);
  const auto& in_names = nl.input_names();
  const auto& ins = nl.primary_inputs();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    map[static_cast<std::size_t>(ins[i])] = out.add_input(in_names[i]);
  }
  auto mapped = [&](NetId n) {
    NetId& m = map[static_cast<std::size_t>(n)];
    if (m == kNoNet) m = out.new_net();
    return m;
  };
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    if (!gate_live[static_cast<std::size_t>(g)]) continue;
    const Gate& gate = nl.gates()[static_cast<std::size_t>(g)];
    std::vector<NetId> new_in;
    std::vector<NetId> new_out;
    for (NetId n : gate.inputs) new_in.push_back(mapped(n));
    for (NetId n : gate.outputs) new_out.push_back(mapped(n));
    const GateId ng =
        out.add_gate_onto(gate.kind, std::move(new_in), std::move(new_out));
    out.gates()[static_cast<std::size_t>(ng)].variant = gate.variant;
  }
  const auto& out_names = nl.output_names();
  const auto& outs = nl.primary_outputs();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    out.mark_output(mapped(outs[i]), out_names[i]);
  }
  return out;
}

/// Splits nets with more than max_fanout sinks behind a buffer tree so
/// that every net (including the root, whose buffers count as sinks)
/// drives at most max_fanout pins.
int buffer_fanout(Netlist& nl, int max_fanout) {
  int inserted = 0;
  using SinkRef = std::pair<GateId, int>;

  // Recursive splitter: points every sink at `net`, inserting buffer
  // levels while the group is too large.
  auto assign = [&](NetId net, std::vector<SinkRef> sinks,
                    auto&& self) -> void {
    if (static_cast<int>(sinks.size()) <= max_fanout) {
      for (const auto& [g, pin] : sinks) {
        nl.gates()[static_cast<std::size_t>(g)]
            .inputs[static_cast<std::size_t>(pin)] = net;
      }
      return;
    }
    std::vector<SinkRef> buffer_pins;
    std::size_t idx = 0;
    while (idx < sinks.size()) {
      const GateId buf = nl.add_gate(CellKind::kBuf, {net});
      ++inserted;
      const NetId bn = nl.gates()[static_cast<std::size_t>(buf)].outputs[0];
      for (int k = 0; k < max_fanout && idx < sinks.size(); ++k, ++idx) {
        const auto [g, pin] = sinks[idx];
        nl.gates()[static_cast<std::size_t>(g)]
            .inputs[static_cast<std::size_t>(pin)] = bn;
      }
      buffer_pins.emplace_back(buf, 0);
    }
    self(net, std::move(buffer_pins), self);
  };

  const auto fo = nl.fanout();
  for (NetId n = 0; n < static_cast<NetId>(fo.size()); ++n) {
    const auto& sinks = fo[static_cast<std::size_t>(n)];
    if (static_cast<int>(sinks.size()) <= max_fanout) continue;
    assign(n, sinks, assign);
  }
  return inserted;
}

}  // namespace

Netlist remap_area(const Netlist& nl, int* fused) {
  // Pair each INV whose driver is a single-fanout simple gate with a
  // cheaper complex cell. One sweep; chains settle after the rebuild.
  const auto drv = nl.driver_gate();
  const auto fo = nl.fanout();

  auto fused_kind = [](CellKind k) -> CellKind {
    switch (k) {
      case CellKind::kAnd2: return CellKind::kNand2;
      case CellKind::kOr2: return CellKind::kNor2;
      case CellKind::kXor2: return CellKind::kXnor2;
      case CellKind::kNand2: return CellKind::kAnd2;
      case CellKind::kNor2: return CellKind::kOr2;
      case CellKind::kXnor2: return CellKind::kXor2;
      default: return CellKind::kDff;  // sentinel: not fusable
    }
  };
  const auto& lib = CellLibrary::nangate45();

  std::vector<bool> consumed(nl.gates().size(), false);
  // replacement[inv_gate] = (new kind, inputs taken from the driver)
  struct Rewrite {
    CellKind kind;
    PinList inputs;
  };
  std::vector<Rewrite> rewrite(nl.gates().size(), Rewrite{CellKind::kDff, {}});
  std::vector<bool> has_rewrite(nl.gates().size(), false);
  int count = 0;

  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& inv = nl.gates()[static_cast<std::size_t>(g)];
    if (inv.kind != CellKind::kInv) continue;
    const GateId d = drv[static_cast<std::size_t>(inv.inputs[0])];
    if (d < 0 || consumed[static_cast<std::size_t>(d)]) continue;
    const Gate& driver = nl.gates()[static_cast<std::size_t>(d)];
    const CellKind merged = fused_kind(driver.kind);
    if (merged == CellKind::kDff) continue;
    // Driver's output must feed only this inverter and no primary output.
    if (fo[static_cast<std::size_t>(driver.outputs[0])].size() != 1) continue;
    bool is_po = false;
    for (NetId po : nl.primary_outputs()) {
      if (po == driver.outputs[0]) is_po = true;
    }
    if (is_po) continue;
    // Only fuse when the complex cell is actually cheaper.
    if (lib.area(merged, 0) >=
        lib.area(driver.kind, 0) + lib.area(CellKind::kInv, 0)) {
      continue;
    }
    consumed[static_cast<std::size_t>(d)] = true;
    rewrite[static_cast<std::size_t>(g)] = {merged, driver.inputs};
    has_rewrite[static_cast<std::size_t>(g)] = true;
    ++count;
  }

  Netlist out;
  std::vector<NetId> map(static_cast<std::size_t>(nl.num_nets()), kNoNet);
  const auto& in_names = nl.input_names();
  const auto& ins = nl.primary_inputs();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    map[static_cast<std::size_t>(ins[i])] = out.add_input(in_names[i]);
  }
  auto mapped = [&](NetId n) {
    NetId& m = map[static_cast<std::size_t>(n)];
    if (m == kNoNet) m = out.new_net();
    return m;
  };
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    if (consumed[static_cast<std::size_t>(g)]) continue;  // merged away
    const Gate& gate = nl.gates()[static_cast<std::size_t>(g)];
    CellKind kind = gate.kind;
    PinList inputs = gate.inputs;
    if (has_rewrite[static_cast<std::size_t>(g)]) {
      kind = rewrite[static_cast<std::size_t>(g)].kind;
      inputs = rewrite[static_cast<std::size_t>(g)].inputs;
    }
    std::vector<NetId> new_in;
    std::vector<NetId> new_out;
    for (NetId n : inputs) new_in.push_back(mapped(n));
    for (NetId n : gate.outputs) new_out.push_back(mapped(n));
    const GateId ng =
        out.add_gate_onto(kind, std::move(new_in), std::move(new_out));
    out.gates()[static_cast<std::size_t>(ng)].variant = gate.variant;
  }
  const auto& out_names = nl.output_names();
  const auto& outs = nl.primary_outputs();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    out.mark_output(mapped(outs[i]), out_names[i]);
  }
  if (fused != nullptr) *fused = count;
  return out;
}

Netlist optimize(const Netlist& nl, const OptOptions& opts, OptStats* stats) {
  OptStats st;
  st.gates_before = nl.num_gates();

  Netlist cur = opts.propagate_constants
                    ? rebuild_folded(nl, &st.constants_folded)
                    : nl;
  if (opts.sweep_dead) cur = sweep_dead(cur);
  if (opts.remap) cur = remap_area(cur, &st.pairs_remapped);
  if (opts.max_fanout > 0) {
    st.buffers_inserted = buffer_fanout(cur, opts.max_fanout);
  }
  st.gates_after = cur.num_gates();
  if (stats != nullptr) *stats = st;
  return cur;
}

}  // namespace rlmul::netlist
