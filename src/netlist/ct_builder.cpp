#include "netlist/ct_builder.hpp"

#include <stdexcept>

namespace rlmul::netlist {

namespace {

std::vector<Signal> build_ripple(LogicBuilder& lb, const ColumnSignals& rows) {
  std::vector<Signal> out(rows.size(), Signal::lo());
  Signal carry = Signal::lo();
  bool have_carry = false;
  for (std::size_t j = 0; j < rows.size(); ++j) {
    std::vector<Signal> bits = rows[j];
    if (have_carry) bits.push_back(carry);
    have_carry = false;
    switch (bits.size()) {
      case 0:
        out[j] = Signal::lo();
        break;
      case 1:
        out[j] = bits[0];
        break;
      case 2: {
        const auto ha = lb.half_add(bits[0], bits[1]);
        out[j] = ha.sum;
        carry = ha.carry;
        have_carry = !carry.is_lo() && (j + 1 < rows.size());
        break;
      }
      case 3: {
        const auto fa = lb.full_add(bits[0], bits[1], bits[2]);
        out[j] = fa.sum;
        carry = fa.carry;
        have_carry = !carry.is_lo() && (j + 1 < rows.size());
        break;
      }
      default:
        throw std::invalid_argument("build_cpa: column with >2 result rows");
    }
  }
  return out;
}

/// Shared parallel-prefix machinery: level-0 (p, g), a per-architecture
/// prefix network computing group generates [0..j], then the sum XOR.
std::vector<Signal> build_prefix(LogicBuilder& lb, const ColumnSignals& rows,
                                 CpaKind kind) {
  const int w = static_cast<int>(rows.size());
  std::vector<Signal> a(static_cast<std::size_t>(w), Signal::lo());
  std::vector<Signal> b(static_cast<std::size_t>(w), Signal::lo());
  for (int j = 0; j < w; ++j) {
    const auto& col = rows[static_cast<std::size_t>(j)];
    if (col.size() > 2) {
      throw std::invalid_argument("build_cpa: column with >2 result rows");
    }
    if (!col.empty()) a[static_cast<std::size_t>(j)] = col[0];
    if (col.size() > 1) b[static_cast<std::size_t>(j)] = col[1];
  }

  // Level-0 propagate/generate; constants fold where b is absent.
  std::vector<Signal> p0(static_cast<std::size_t>(w));
  std::vector<Signal> g(static_cast<std::size_t>(w));
  std::vector<Signal> p(static_cast<std::size_t>(w));
  for (int j = 0; j < w; ++j) {
    p0[static_cast<std::size_t>(j)] =
        lb.xor2(a[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(j)]);
    g[static_cast<std::size_t>(j)] =
        lb.and2(a[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(j)]);
    p[static_cast<std::size_t>(j)] = p0[static_cast<std::size_t>(j)];
  }

  // (g, p)[j] <- (g, p)[j] o (g, p)[m]   — the prefix operator.
  auto combine = [&](int j, int m) {
    g[static_cast<std::size_t>(j)] =
        lb.or2(g[static_cast<std::size_t>(j)],
               lb.and2(p[static_cast<std::size_t>(j)],
                       g[static_cast<std::size_t>(m)]));
    p[static_cast<std::size_t>(j)] =
        lb.and2(p[static_cast<std::size_t>(j)],
                p[static_cast<std::size_t>(m)]);
  };

  switch (kind) {
    case CpaKind::kKoggeStone: {
      // All nodes advance together: double-buffer each level.
      for (int d = 1; d < w; d *= 2) {
        std::vector<Signal> ng = g;
        std::vector<Signal> np = p;
        for (int j = w - 1; j >= d; --j) {
          ng[static_cast<std::size_t>(j)] =
              lb.or2(g[static_cast<std::size_t>(j)],
                     lb.and2(p[static_cast<std::size_t>(j)],
                             g[static_cast<std::size_t>(j - d)]));
          np[static_cast<std::size_t>(j)] =
              lb.and2(p[static_cast<std::size_t>(j)],
                      p[static_cast<std::size_t>(j - d)]);
        }
        g = std::move(ng);
        p = std::move(np);
      }
      break;
    }
    case CpaKind::kSklansky: {
      // Level k merges each right half-block with the left block's last
      // node; partners have bit k clear so in-place updates are safe.
      for (int d = 1; d < w; d *= 2) {
        for (int j = 0; j < w; ++j) {
          if ((j & d) != 0) combine(j, (j / d) * d - 1);
        }
      }
      break;
    }
    case CpaKind::kBrentKung: {
      // Up-sweep then down-sweep; partners at each step are finished
      // spans, so in-place updates are safe.
      int top = 1;
      while (top < w) top *= 2;
      for (int d = 1; d < w; d *= 2) {
        for (int j = 2 * d - 1; j < w; j += 2 * d) combine(j, j - d);
      }
      for (int d = top / 2; d > 1; d /= 2) {
        for (int j = d + d / 2 - 1; j < w; j += d) combine(j, j - d / 2);
      }
      break;
    }
    case CpaKind::kRippleCarry:
      throw std::logic_error("build_prefix: ripple is not a prefix CPA");
  }

  std::vector<Signal> out(static_cast<std::size_t>(w));
  out[0] = p0[0];
  for (int j = 1; j < w; ++j) {
    out[static_cast<std::size_t>(j)] =
        lb.xor2(p0[static_cast<std::size_t>(j)],
                g[static_cast<std::size_t>(j - 1)]);
  }
  return out;
}

}  // namespace

const char* cpa_kind_name(CpaKind kind) {
  switch (kind) {
    case CpaKind::kRippleCarry: return "RCA";
    case CpaKind::kKoggeStone: return "KS";
    case CpaKind::kBrentKung: return "BK";
    case CpaKind::kSklansky: return "SK";
  }
  return "?";
}

std::vector<Signal> build_cpa(LogicBuilder& lb, CpaKind kind,
                              const ColumnSignals& rows) {
  switch (kind) {
    case CpaKind::kRippleCarry:
      return build_ripple(lb, rows);
    case CpaKind::kKoggeStone:
    case CpaKind::kBrentKung:
    case CpaKind::kSklansky:
      return build_prefix(lb, rows, kind);
  }
  throw std::invalid_argument("build_cpa: unknown kind");
}

}  // namespace rlmul::netlist
