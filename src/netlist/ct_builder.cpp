#include "netlist/ct_builder.hpp"

#include <stdexcept>

namespace rlmul::netlist {

namespace {

std::vector<Signal> build_ripple(LogicBuilder& lb, const ColumnSignals& rows) {
  std::vector<Signal> out(rows.size(), Signal::lo());
  Signal carry = Signal::lo();
  bool have_carry = false;
  for (std::size_t j = 0; j < rows.size(); ++j) {
    std::vector<Signal> bits = rows[j];
    if (have_carry) bits.push_back(carry);
    have_carry = false;
    switch (bits.size()) {
      case 0:
        out[j] = Signal::lo();
        break;
      case 1:
        out[j] = bits[0];
        break;
      case 2: {
        const auto ha = lb.half_add(bits[0], bits[1]);
        out[j] = ha.sum;
        carry = ha.carry;
        have_carry = !carry.is_lo() && (j + 1 < rows.size());
        break;
      }
      case 3: {
        const auto fa = lb.full_add(bits[0], bits[1], bits[2]);
        out[j] = fa.sum;
        carry = fa.carry;
        have_carry = !carry.is_lo() && (j + 1 < rows.size());
        break;
      }
      default:
        throw std::invalid_argument("build_cpa: column with >2 result rows");
    }
  }
  return out;
}

/// Shared parallel-prefix machinery: level-0 (p, g), a per-architecture
/// prefix network computing group generates [0..j], then the sum XOR.
std::vector<Signal> build_prefix(LogicBuilder& lb, const ColumnSignals& rows,
                                 CpaKind kind) {
  const int w = static_cast<int>(rows.size());
  std::vector<Signal> a(static_cast<std::size_t>(w), Signal::lo());
  std::vector<Signal> b(static_cast<std::size_t>(w), Signal::lo());
  for (int j = 0; j < w; ++j) {
    const auto& col = rows[static_cast<std::size_t>(j)];
    if (col.size() > 2) {
      throw std::invalid_argument("build_cpa: column with >2 result rows");
    }
    if (!col.empty()) a[static_cast<std::size_t>(j)] = col[0];
    if (col.size() > 1) b[static_cast<std::size_t>(j)] = col[1];
  }

  // Level-0 propagate/generate; constants fold where b is absent.
  std::vector<Signal> p0(static_cast<std::size_t>(w));
  std::vector<Signal> g(static_cast<std::size_t>(w));
  std::vector<Signal> p(static_cast<std::size_t>(w));
  for (int j = 0; j < w; ++j) {
    p0[static_cast<std::size_t>(j)] =
        lb.xor2(a[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(j)]);
    g[static_cast<std::size_t>(j)] =
        lb.and2(a[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(j)]);
    p[static_cast<std::size_t>(j)] = p0[static_cast<std::size_t>(j)];
  }

  // (g, p)[j] <- (g, p)[j] o (g, p)[m]   — the prefix operator.
  auto combine = [&](int j, int m) {
    g[static_cast<std::size_t>(j)] =
        lb.or2(g[static_cast<std::size_t>(j)],
               lb.and2(p[static_cast<std::size_t>(j)],
                       g[static_cast<std::size_t>(m)]));
    p[static_cast<std::size_t>(j)] =
        lb.and2(p[static_cast<std::size_t>(j)],
                p[static_cast<std::size_t>(m)]);
  };

  switch (kind) {
    case CpaKind::kKoggeStone: {
      // All nodes advance together: double-buffer each level.
      for (int d = 1; d < w; d *= 2) {
        std::vector<Signal> ng = g;
        std::vector<Signal> np = p;
        for (int j = w - 1; j >= d; --j) {
          ng[static_cast<std::size_t>(j)] =
              lb.or2(g[static_cast<std::size_t>(j)],
                     lb.and2(p[static_cast<std::size_t>(j)],
                             g[static_cast<std::size_t>(j - d)]));
          np[static_cast<std::size_t>(j)] =
              lb.and2(p[static_cast<std::size_t>(j)],
                      p[static_cast<std::size_t>(j - d)]);
        }
        g = std::move(ng);
        p = std::move(np);
      }
      break;
    }
    case CpaKind::kSklansky: {
      // Level k merges each right half-block with the left block's last
      // node; partners have bit k clear so in-place updates are safe.
      for (int d = 1; d < w; d *= 2) {
        for (int j = 0; j < w; ++j) {
          if ((j & d) != 0) combine(j, (j / d) * d - 1);
        }
      }
      break;
    }
    case CpaKind::kBrentKung: {
      // Up-sweep then down-sweep; partners at each step are finished
      // spans, so in-place updates are safe.
      int top = 1;
      while (top < w) top *= 2;
      for (int d = 1; d < w; d *= 2) {
        for (int j = 2 * d - 1; j < w; j += 2 * d) combine(j, j - d);
      }
      for (int d = top / 2; d > 1; d /= 2) {
        for (int j = d + d / 2 - 1; j < w; j += d) combine(j, j - d / 2);
      }
      break;
    }
    case CpaKind::kRippleCarry:
    case CpaKind::kCustom:
      throw std::logic_error("build_prefix: not a named prefix CPA");
  }

  std::vector<Signal> out(static_cast<std::size_t>(w));
  out[0] = p0[0];
  for (int j = 1; j < w; ++j) {
    out[static_cast<std::size_t>(j)] =
        lb.xor2(p0[static_cast<std::size_t>(j)],
                g[static_cast<std::size_t>(j - 1)]);
  }
  return out;
}

}  // namespace

const char* cpa_kind_name(CpaKind kind) {
  switch (kind) {
    case CpaKind::kRippleCarry: return "RCA";
    case CpaKind::kKoggeStone: return "KS";
    case CpaKind::kBrentKung: return "BK";
    case CpaKind::kSklansky: return "SK";
    case CpaKind::kCustom: return "custom";
  }
  return "?";
}

bool parse_cpa_kind(std::string_view name, CpaKind* out) {
  if (name == "rca" || name == "ripple" || name == "RCA") {
    *out = CpaKind::kRippleCarry;
  } else if (name == "ks" || name == "kogge-stone" || name == "KS") {
    *out = CpaKind::kKoggeStone;
  } else if (name == "bk" || name == "brent-kung" || name == "BK") {
    *out = CpaKind::kBrentKung;
  } else if (name == "sk" || name == "sklansky" || name == "SK") {
    *out = CpaKind::kSklansky;
  } else {
    return false;
  }
  return true;
}

bool cpa_kind_from_index(int index, CpaKind* out) {
  switch (index) {
    case static_cast<int>(CpaKind::kRippleCarry):
      *out = CpaKind::kRippleCarry;
      return true;
    case static_cast<int>(CpaKind::kKoggeStone):
      *out = CpaKind::kKoggeStone;
      return true;
    case static_cast<int>(CpaKind::kBrentKung):
      *out = CpaKind::kBrentKung;
      return true;
    case static_cast<int>(CpaKind::kSklansky):
      *out = CpaKind::kSklansky;
      return true;
    case static_cast<int>(CpaKind::kCustom):
      *out = CpaKind::kCustom;
      return true;
  }
  return false;
}

prefix::PrefixGraph prefix_graph_of(CpaKind kind, int width) {
  switch (kind) {
    case CpaKind::kRippleCarry: return prefix::serial(width);
    case CpaKind::kKoggeStone: return prefix::kogge_stone(width);
    case CpaKind::kBrentKung: return prefix::brent_kung(width);
    case CpaKind::kSklansky: return prefix::sklansky(width);
    case CpaKind::kCustom: break;
  }
  throw std::invalid_argument("prefix_graph_of: kind has no fixed graph");
}

CpaKind cpa_kind_of_graph(const prefix::PrefixGraph& g) {
  const prefix::PrefixGraph canon = prefix::canonicalize(g);
  if (canon == prefix::canonicalize(prefix::serial(g.width))) {
    return CpaKind::kRippleCarry;
  }
  if (canon == prefix::canonicalize(prefix::brent_kung(g.width))) {
    return CpaKind::kBrentKung;
  }
  if (canon == prefix::canonicalize(prefix::sklansky(g.width))) {
    return CpaKind::kSklansky;
  }
  if (canon == prefix::canonicalize(prefix::kogge_stone(g.width))) {
    return CpaKind::kKoggeStone;
  }
  return CpaKind::kCustom;
}

namespace {

std::vector<Signal> emit_prefix_graph(LogicBuilder& lb,
                                      const prefix::PrefixGraph& g,
                                      const ColumnSignals& rows);

}  // namespace

std::vector<Signal> build_cpa(LogicBuilder& lb, CpaKind kind,
                              const ColumnSignals& rows) {
  // Ripple was never a prefix network — it keeps the HA/FA chain. The
  // three prefix kinds lower through their named graphs unconditionally
  // (at width <= 2 those graphs coincide with the serial chain, but the
  // enum contract is prefix-gate emission, so no serial shortcut here).
  if (kind == CpaKind::kRippleCarry) return build_ripple(lb, rows);
  if (kind == CpaKind::kCustom) {
    throw std::invalid_argument(
        "build_cpa: kCustom needs the PrefixGraph overload");
  }
  return emit_prefix_graph(
      lb, prefix_graph_of(kind, static_cast<int>(rows.size())), rows);
}

std::vector<Signal> build_cpa(LogicBuilder& lb, const prefix::PrefixGraph& g,
                              const ColumnSignals& rows) {
  if (g.width != static_cast<int>(rows.size())) {
    throw std::invalid_argument("build_cpa: graph width != column count");
  }
  if (prefix::is_serial(g)) return build_ripple(lb, rows);
  return emit_prefix_graph(lb, g, rows);
}

namespace {

std::vector<Signal> emit_prefix_graph(LogicBuilder& lb,
                                      const prefix::PrefixGraph& g,
                                      const ColumnSignals& rows) {
  const int w = static_cast<int>(rows.size());
  std::vector<Signal> a(static_cast<std::size_t>(w), Signal::lo());
  std::vector<Signal> b(static_cast<std::size_t>(w), Signal::lo());
  for (int j = 0; j < w; ++j) {
    const auto& col = rows[static_cast<std::size_t>(j)];
    if (col.size() > 2) {
      throw std::invalid_argument("build_cpa: column with >2 result rows");
    }
    if (!col.empty()) a[static_cast<std::size_t>(j)] = col[0];
    if (col.size() > 1) b[static_cast<std::size_t>(j)] = col[1];
  }

  // Level-0 propagate/generate; constants fold where b is absent.
  std::vector<Signal> p0(static_cast<std::size_t>(w));
  std::vector<Signal> g0(static_cast<std::size_t>(w));
  for (int j = 0; j < w; ++j) {
    p0[static_cast<std::size_t>(j)] =
        lb.xor2(a[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(j)]);
    g0[static_cast<std::size_t>(j)] =
        lb.and2(a[static_cast<std::size_t>(j)], b[static_cast<std::size_t>(j)]);
  }

  // One prefix operator per node, in node-list order: the AND feeding
  // the generate OR, the OR, then the propagate AND — the gate order
  // every legacy prefix emitter used.
  std::vector<Signal> ng(g.nodes.size());
  std::vector<Signal> np(g.nodes.size());
  const auto g_of = [&](prefix::Ref r) {
    return prefix::is_leaf(r)
               ? g0[static_cast<std::size_t>(prefix::leaf_bit(r))]
               : ng[static_cast<std::size_t>(r)];
  };
  const auto p_of = [&](prefix::Ref r) {
    return prefix::is_leaf(r)
               ? p0[static_cast<std::size_t>(prefix::leaf_bit(r))]
               : np[static_cast<std::size_t>(r)];
  };
  for (std::size_t k = 0; k < g.nodes.size(); ++k) {
    const prefix::Node& n = g.nodes[k];
    ng[k] = lb.or2(g_of(n.left), lb.and2(p_of(n.left), g_of(n.right)));
    np[k] = lb.and2(p_of(n.left), p_of(n.right));
  }

  std::vector<Signal> out(static_cast<std::size_t>(w));
  out[0] = p0[0];
  for (int j = 1; j < w; ++j) {
    out[static_cast<std::size_t>(j)] =
        lb.xor2(p0[static_cast<std::size_t>(j)],
                g_of(g.outputs[static_cast<std::size_t>(j - 1)]));
  }
  return out;
}

}  // namespace

std::vector<Signal> build_cpa_legacy(LogicBuilder& lb, CpaKind kind,
                                     const ColumnSignals& rows) {
  switch (kind) {
    case CpaKind::kRippleCarry:
      return build_ripple(lb, rows);
    case CpaKind::kKoggeStone:
    case CpaKind::kBrentKung:
    case CpaKind::kSklansky:
      return build_prefix(lb, rows, kind);
    case CpaKind::kCustom:
      break;
  }
  throw std::invalid_argument("build_cpa: unknown kind");
}

}  // namespace rlmul::netlist
