// build_compressor_tree lives in its own TU: it carries the signal-
// ordering policy (FIFO vs TDM) and the per-bit arrival bookkeeping.

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "netlist/ct_builder.hpp"

namespace rlmul::netlist {

namespace {

/// A partial-product bit with its estimated arrival time (ps; coarse
/// constants, good enough to order signals the way TDM wants).
struct Bit {
  Signal sig;
  double t = 0.0;
};

constexpr double kFaSumA = 52.0, kFaSumC = 34.0;
constexpr double kFaCarryA = 38.0, kFaCarryC = 24.0;
constexpr double kHaSum = 30.0, kHaCarry = 18.0;
constexpr double kXor = 26.0;

/// Removes and returns `n` bits: FIFO order, or the n earliest arrivals
/// under TDM (ties keep insertion order, so the build is deterministic).
std::vector<Bit> take(std::vector<Bit>& bits, std::size_t n, bool tdm) {
  std::vector<Bit> out;
  out.reserve(n);
  if (!tdm) {
    out.assign(bits.begin(), bits.begin() + static_cast<std::ptrdiff_t>(n));
    bits.erase(bits.begin(), bits.begin() + static_cast<std::ptrdiff_t>(n));
    return out;
  }
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < bits.size(); ++i) {
      if (bits[i].t < bits[best].t) best = i;
    }
    out.push_back(bits[best]);
    bits.erase(bits.begin() + static_cast<std::ptrdiff_t>(best));
  }
  // Latest-arriving of the selected bits goes last (the fast pin).
  std::sort(out.begin(), out.end(),
            [](const Bit& a, const Bit& b) { return a.t < b.t; });
  return out;
}

}  // namespace

ColumnSignals build_compressor_tree(LogicBuilder& lb,
                                    const ct::CompressorTree& tree,
                                    ColumnSignals columns,
                                    const CtBuildOptions& opts) {
  const int cols = tree.columns();
  if (static_cast<int>(columns.size()) != cols) {
    throw std::invalid_argument("build_compressor_tree: column count");
  }
  for (int j = 0; j < cols; ++j) {
    if (static_cast<int>(columns[static_cast<std::size_t>(j)].size()) !=
        tree.pp[static_cast<std::size_t>(j)]) {
      throw std::invalid_argument(
          "build_compressor_tree: column height mismatch with tree.pp");
    }
  }

  const ct::StageAssignment plan = ct::assign_stages(tree);

  // avail[j]: bits usable at the current stage; pending[j]: bits that
  // become available at the next stage (sums and incoming carries).
  std::vector<std::vector<Bit>> avail(static_cast<std::size_t>(cols));
  std::vector<std::vector<Bit>> pending(static_cast<std::size_t>(cols));
  for (int j = 0; j < cols; ++j) {
    for (const Signal& s : columns[static_cast<std::size_t>(j)]) {
      avail[static_cast<std::size_t>(j)].push_back({s, 0.0});
    }
  }

  auto starved = []() -> std::logic_error {
    return std::logic_error("CT build: stage plan starved a column");
  };

  for (int s = 0; s < plan.stages; ++s) {
    for (int j = 0; j < cols; ++j) {
      auto& bits = avail[static_cast<std::size_t>(j)];
      auto& here = pending[static_cast<std::size_t>(j)];
      const bool top = (j + 1 == cols);
      auto& left =
          top ? here : pending[static_cast<std::size_t>(j) + 1];
      const int n32 =
          plan.t32[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
      const int n22 =
          plan.t22[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
      const int n42 =
          plan.t42[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];

      for (int k = 0; k < n42; ++k) {
        if (bits.size() < 4) throw starved();
        const auto in = take(bits, 4, opts.tdm_ordering);
        if (top) {
          here.push_back({lb.xor2(lb.xor3(in[0].sig, in[1].sig, in[2].sig),
                                  in[3].sig),
                          std::max({in[0].t, in[1].t, in[2].t}) + 2 * kXor});
        } else {
          const auto c42 =
              lb.compress42(in[0].sig, in[1].sig, in[2].sig, in[3].sig);
          const double base = std::max({in[0].t, in[1].t, in[2].t});
          here.push_back({c42.sum, std::max(base + kFaSumA + kHaSum,
                                            in[3].t + kHaSum)});
          left.push_back({c42.carry1, base + kFaCarryA});
          left.push_back({c42.carry2, std::max(base + kFaSumA, in[3].t) +
                                          kHaCarry});
        }
      }
      for (int k = 0; k < n32; ++k) {
        if (bits.size() < 3) throw starved();
        const auto in = take(bits, 3, opts.tdm_ordering);
        if (top) {
          here.push_back({lb.xor3(in[0].sig, in[1].sig, in[2].sig),
                          std::max({in[0].t, in[1].t, in[2].t}) + 2 * kXor});
        } else {
          // Latest arrival rides the fast CI arcs.
          const auto fa = lb.full_add(in[0].sig, in[1].sig, in[2].sig);
          const double ab = std::max(in[0].t, in[1].t);
          here.push_back(
              {fa.sum, std::max(ab + kFaSumA, in[2].t + kFaSumC)});
          left.push_back(
              {fa.carry, std::max(ab + kFaCarryA, in[2].t + kFaCarryC)});
        }
      }
      for (int k = 0; k < n22; ++k) {
        if (bits.size() < 2) throw starved();
        const auto in = take(bits, 2, opts.tdm_ordering);
        if (top) {
          here.push_back({lb.xor2(in[0].sig, in[1].sig),
                          std::max(in[0].t, in[1].t) + kXor});
        } else {
          const auto ha = lb.half_add(in[0].sig, in[1].sig);
          const double ab = std::max(in[0].t, in[1].t);
          here.push_back({ha.sum, ab + kHaSum});
          left.push_back({ha.carry, ab + kHaCarry});
        }
      }
    }
    // Stage boundary: pending bits become available.
    for (int j = 0; j < cols; ++j) {
      auto& p = pending[static_cast<std::size_t>(j)];
      auto& a = avail[static_cast<std::size_t>(j)];
      a.insert(a.end(), p.begin(), p.end());
      p.clear();
    }
  }

  ColumnSignals out(static_cast<std::size_t>(cols));
  for (int j = 0; j < cols; ++j) {
    auto& bits = avail[static_cast<std::size_t>(j)];
    if (static_cast<int>(bits.size()) !=
        std::max(tree.final_height(j), 0)) {
      throw std::logic_error("CT build: final height mismatch");
    }
    for (const Bit& b : bits) {
      out[static_cast<std::size_t>(j)].push_back(b.sig);
    }
  }
  return out;
}

}  // namespace rlmul::netlist
