#include "netlist/logic_builder.hpp"

namespace rlmul::netlist {

namespace {
Signal out_of(Netlist& nl, GateId g, int pin = 0) {
  return Signal::of(nl.gates()[static_cast<std::size_t>(g)]
                        .outputs[static_cast<std::size_t>(pin)]);
}
}  // namespace

Signal LogicBuilder::inv(Signal a) {
  if (a.is_const()) return a.is_lo() ? Signal::hi() : Signal::lo();
  return out_of(nl_, nl_.add_gate(CellKind::kInv, {a.net}));
}

Signal LogicBuilder::and2(Signal a, Signal b) {
  if (a.is_lo() || b.is_lo()) return Signal::lo();
  if (a.is_hi()) return b;
  if (b.is_hi()) return a;
  if (a == b) return a;
  return out_of(nl_, nl_.add_gate(CellKind::kAnd2, {a.net, b.net}));
}

Signal LogicBuilder::or2(Signal a, Signal b) {
  if (a.is_hi() || b.is_hi()) return Signal::hi();
  if (a.is_lo()) return b;
  if (b.is_lo()) return a;
  if (a == b) return a;
  return out_of(nl_, nl_.add_gate(CellKind::kOr2, {a.net, b.net}));
}

Signal LogicBuilder::xor2(Signal a, Signal b) {
  if (a.is_const() && b.is_const()) {
    return a == b ? Signal::lo() : Signal::hi();
  }
  if (a.is_lo()) return b;
  if (b.is_lo()) return a;
  if (a.is_hi()) return inv(b);
  if (b.is_hi()) return inv(a);
  if (a == b) return Signal::lo();
  return out_of(nl_, nl_.add_gate(CellKind::kXor2, {a.net, b.net}));
}

Signal LogicBuilder::xnor2(Signal a, Signal b) { return inv(xor2(a, b)); }

Signal LogicBuilder::mux2(Signal a, Signal b, Signal sel) {
  if (sel.is_lo()) return a;
  if (sel.is_hi()) return b;
  if (a == b) return a;
  if (a.is_const() && b.is_const()) {
    // a=0,b=1 -> sel ; a=1,b=0 -> !sel
    return a.is_lo() ? sel : inv(sel);
  }
  if (a.is_lo()) return and2(sel, b);
  if (b.is_lo()) return and2(inv(sel), a);
  if (a.is_hi()) return or2(inv(sel), b);
  if (b.is_hi()) return or2(sel, a);
  return out_of(nl_,
                nl_.add_gate(CellKind::kMux2, {a.net, b.net, sel.net}));
}

LogicBuilder::AddOut LogicBuilder::half_add(Signal a, Signal b) {
  if (a.is_const() || b.is_const()) {
    if (a.is_const() && !b.is_const()) std::swap(a, b);
    // b is the constant (or both are).
    if (b.is_lo()) return {a, Signal::lo()};
    // b == 1: sum = !a, carry = a
    return {inv(a), a};
  }
  const GateId g = nl_.add_gate(CellKind::kHa, {a.net, b.net});
  return {out_of(nl_, g, 0), out_of(nl_, g, 1)};
}

LogicBuilder::AddOut LogicBuilder::full_add(Signal a, Signal b, Signal c) {
  // Sort constants to the back.
  if (a.is_const() && !c.is_const()) std::swap(a, c);
  if (b.is_const() && !c.is_const()) std::swap(b, c);
  if (c.is_const()) {
    if (c.is_lo()) return half_add(a, b);
    // c == 1: sum = xnor(a,b), carry = or(a,b)
    const AddOut ha = half_add(a, b);
    return {inv(ha.sum), or2(a, b)};
  }
  const GateId g = nl_.add_gate(CellKind::kFa, {a.net, b.net, c.net});
  return {out_of(nl_, g, 0), out_of(nl_, g, 1)};
}

Signal LogicBuilder::xor3(Signal a, Signal b, Signal c) {
  return xor2(xor2(a, b), c);
}

LogicBuilder::C42Out LogicBuilder::compress42(Signal a, Signal b, Signal c,
                                              Signal d) {
  if (a.is_const() || b.is_const() || c.is_const() || d.is_const()) {
    // Fold through the adder composition FA(a,b,c) + HA(s1,d).
    const AddOut fa = full_add(a, b, c);
    const AddOut ha = half_add(fa.sum, d);
    return {ha.sum, fa.carry, ha.carry};
  }
  const GateId g =
      nl_.add_gate(CellKind::kC42, {a.net, b.net, c.net, d.net});
  return {out_of(nl_, g, 0), out_of(nl_, g, 1), out_of(nl_, g, 2)};
}

NetId LogicBuilder::materialize(Signal s) {
  if (!s.is_const()) return s.net;
  return s.is_lo() ? nl_.tie_lo() : nl_.tie_hi();
}

}  // namespace rlmul::netlist
