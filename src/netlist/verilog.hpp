#pragma once
// Structural-Verilog export. The paper's flow hands EasyMAC RTL to
// Yosys/OpenROAD; this writer closes the loop in the other direction —
// any netlist built here (multipliers, MACs, PE cells) can be dumped as
// a gate-level Verilog module mapped onto NanGate-style cell names, so
// downstream users can feed the optimized designs to a real flow.

#include <string>

#include "netlist/netlist.hpp"

namespace rlmul::netlist {

struct VerilogOptions {
  std::string module_name = "rlmul_top";
  /// Emit `// area/delay` banner comments with gate statistics.
  bool banner = true;
};

/// Renders the netlist as a synthesizable structural Verilog module.
/// Cell names follow the NanGate convention (INV_X1, FA_X2, ...);
/// multi-output cells use named port connections. DFFs get a `clk`
/// port on the module automatically.
std::string to_verilog(const Netlist& nl, const VerilogOptions& opts = {});

/// Graphviz dot rendering: gates as boxes (FA/HA/C42 highlighted),
/// primary I/O as ellipses — handy for eyeballing small designs.
std::string to_dot(const Netlist& nl, const std::string& name = "rlmul");

}  // namespace rlmul::netlist
