#pragma once
// Emits the compressor tree and the final carry-propagation adder into a
// netlist. The CT follows the deterministic stage assignment of
// Algorithm 1, so the emitted structure is exactly the paper's tensor
// representation made of FA/HA cells. Carries leaving the top column
// are discarded (mod-2^W arithmetic); compressors there degrade to
// sum-only XOR trees, as a synthesizer would trim them.

#include <vector>

#include "ct/compressor_tree.hpp"
#include "netlist/logic_builder.hpp"
#include "netlist/netlist.hpp"

namespace rlmul::netlist {

/// Per-column partial-product bits, LSB column first.
using ColumnSignals = std::vector<std::vector<Signal>>;

struct CtBuildOptions {
  /// Three-Dimensional-Method-style signal ordering (Oklobdzija et
  /// al.): within each stage, compressors consume the earliest-arriving
  /// bits and route the latest of them to the fast carry-in pin, so
  /// slow signals ride the short arcs. Off = plain FIFO order (the
  /// deterministic baseline the tensor representation documents).
  bool tdm_ordering = false;
};

/// Compresses `columns` with the tree's compressors. Returns the final
/// rows: per column a list of 1 or 2 signals (0 for empty columns).
/// The number of initial bits per column must match `tree.pp`.
ColumnSignals build_compressor_tree(LogicBuilder& lb,
                                    const ct::CompressorTree& tree,
                                    ColumnSignals columns,
                                    const CtBuildOptions& opts = {});

enum class CpaKind {
  kRippleCarry,  ///< minimum area, linear delay
  kKoggeStone,   ///< parallel-prefix, log delay, max wiring/area
  kBrentKung,    ///< parallel-prefix, ~2log depth, minimal prefix nodes
  kSklansky,     ///< parallel-prefix, log depth, high-fanout nodes
};

const char* cpa_kind_name(CpaKind kind);

/// All CPA architectures, in area order (for synthesis sweeps).
inline constexpr CpaKind kAllCpaKinds[] = {
    CpaKind::kRippleCarry, CpaKind::kBrentKung, CpaKind::kSklansky,
    CpaKind::kKoggeStone};

/// Adds the (<=2)-row result into one output bit per column. The carry
/// out of the top column is discarded.
std::vector<Signal> build_cpa(LogicBuilder& lb, CpaKind kind,
                              const ColumnSignals& rows);

}  // namespace rlmul::netlist
