#pragma once
// Emits the compressor tree and the final carry-propagation adder into a
// netlist. The CT follows the deterministic stage assignment of
// Algorithm 1, so the emitted structure is exactly the paper's tensor
// representation made of FA/HA cells. Carries leaving the top column
// are discarded (mod-2^W arithmetic); compressors there degrade to
// sum-only XOR trees, as a synthesizer would trim them.

#include <string_view>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "netlist/logic_builder.hpp"
#include "netlist/netlist.hpp"
#include "prefix/prefix_graph.hpp"

namespace rlmul::netlist {

/// Per-column partial-product bits, LSB column first.
using ColumnSignals = std::vector<std::vector<Signal>>;

struct CtBuildOptions {
  /// Three-Dimensional-Method-style signal ordering (Oklobdzija et
  /// al.): within each stage, compressors consume the earliest-arriving
  /// bits and route the latest of them to the fast carry-in pin, so
  /// slow signals ride the short arcs. Off = plain FIFO order (the
  /// deterministic baseline the tensor representation documents).
  bool tdm_ordering = false;
};

/// Compresses `columns` with the tree's compressors. Returns the final
/// rows: per column a list of 1 or 2 signals (0 for empty columns).
/// The number of initial bits per column must match `tree.pp`.
ColumnSignals build_compressor_tree(LogicBuilder& lb,
                                    const ct::CompressorTree& tree,
                                    ColumnSignals columns,
                                    const CtBuildOptions& opts = {});

enum class CpaKind {
  kRippleCarry,  ///< minimum area, linear delay
  kKoggeStone,   ///< parallel-prefix, log delay, max wiring/area
  kBrentKung,    ///< parallel-prefix, ~2log depth, minimal prefix nodes
  kSklansky,     ///< parallel-prefix, log depth, high-fanout nodes
  /// A search-produced prefix graph that matches none of the named
  /// architectures. Only a reporting label: it never appears in
  /// kAllCpaKinds, cannot be parsed from a name, and has no
  /// prefix_graph_of — the graph itself travels with the design point.
  kCustom,
};

const char* cpa_kind_name(CpaKind kind);

/// Parses a CPA name (CLI spelling or cpa_kind_name output, case
/// as written): rca/ripple, ks/kogge-stone, bk/brent-kung,
/// sk/sklansky. Returns false on unknown names.
bool parse_cpa_kind(std::string_view name, CpaKind* out);

/// CpaKind from a serialized index (dsdb record decoding); returns
/// false when the index is out of range.
bool cpa_kind_from_index(int index, CpaKind* out);

/// All CPA architectures, in area order (for synthesis sweeps). The
/// order is a documented contract: synthesize_design and the batch
/// evaluator walk it front to back and stop at the first architecture
/// meeting the delay target, assuming everything later is larger.
/// Brent-Kung before Sklansky holds at every practical width because
/// BK places fewer prefix operators (~2w vs ~(w/2)log w); the
/// CpaSweepOrder test in tests/test_prefix.cpp pins the full
/// ripple < BK < SK < KS area ordering per width so a library change
/// that flips it fails loudly instead of silently degrading sweeps.
inline constexpr CpaKind kAllCpaKinds[] = {
    CpaKind::kRippleCarry, CpaKind::kBrentKung, CpaKind::kSklansky,
    CpaKind::kKoggeStone};

/// The named prefix graph a CpaKind denotes (throws for kCustom, which
/// denotes no fixed graph). Emitting it through the PrefixGraph
/// overload of build_cpa reproduces the legacy per-enum emitter bit for
/// bit.
prefix::PrefixGraph prefix_graph_of(CpaKind kind, int width);

/// The reporting label for an arbitrary prefix graph: the named kind
/// whose canonical structure the graph matches, else kCustom. (The
/// serial chain labels kRippleCarry even when it was reached by
/// search.)
CpaKind cpa_kind_of_graph(const prefix::PrefixGraph& g);

/// Adds the (<=2)-row result into one output bit per column. The carry
/// out of the top column is discarded. Lowers through
/// prefix_graph_of(kind) — four named points of the prefix space.
std::vector<Signal> build_cpa(LogicBuilder& lb, CpaKind kind,
                              const ColumnSignals& rows);

/// Emits an arbitrary valid prefix graph: level-0 (p, g) per column,
/// three gates per prefix node in node-list order, then the sum XOR
/// row. Serial graphs lower through the HA/FA ripple chain instead,
/// exactly as CpaKind::kRippleCarry always has.
std::vector<Signal> build_cpa(LogicBuilder& lb, const prefix::PrefixGraph& g,
                              const ColumnSignals& rows);

/// The pre-refactor per-enum emitter, kept verbatim as the reference
/// the PrefixGraph path is property-tested against (bit-identical
/// netlists for all four kinds).
std::vector<Signal> build_cpa_legacy(LogicBuilder& lb, CpaKind kind,
                                     const ColumnSignals& rows);

// ---------------------------------------------------------------------------
// Delta evaluation: traced builds and parent-relative replay.
//
// A traced build records, per (stage, column) compressor cell, the gate
// range it emitted and the signals it pushed into the column queues.
// Replaying a *child* tree against a parent's trace walks both builds in
// lockstep: cells whose compressor counts and consumed signals match the
// parent positionally are "clean" and their gates are copied wholesale
// from the parent netlist (never re-derived); everything else — the
// fan-out cone of the changed columns — runs through the real emitter.
// Because every net in the region is allocated by add_gate in emission
// order and the logic folder is stateless (no CSE), the copied gates
// receive exactly the net ids a from-scratch build would have allocated,
// so the replayed netlist is byte-identical to building the child from
// scratch (property-tested). FIFO ordering only: TDM consults per-bit
// timestamps the trace does not carry, and callers fall back.
// ---------------------------------------------------------------------------

/// Trace of one compressor-tree build over a netlist whose head
/// [0, ppg_gates) x [0, ppg_nets) is the PPG region the CT consumed.
struct CtBuildTrace {
  ColumnSignals ppg_columns;    ///< initial partial-product bits
  std::int32_t ppg_gates = 0;   ///< gate count before the CT region
  std::int32_t ppg_nets = 0;    ///< net count before the CT region
  int stages = 0;
  int cols = 0;
  /// Per cell c = stage*cols + column (plus one sentinel): the emitted
  /// gate range [cell_gate_begin[c], cell_gate_begin[c+1]) and the
  /// signals pushed into this column's pending queue (`here`) and the
  /// next column's (`left`), flattened in push order.
  std::vector<std::int32_t> cell_gate_begin;
  std::vector<std::int32_t> here_begin;
  std::vector<std::int32_t> left_begin;
  std::vector<Signal> here;
  std::vector<Signal> left;
};

/// A signal plus its parent-build correspondent, when one exists. Twins
/// are how the replay decides a cell consumed "the same" bits as the
/// parent: the child signal is the image of `twin` under the
/// parent-to-child net map.
struct TwinnedSignal {
  Signal sig;
  Signal twin;
  bool has_twin = false;
};

struct CtReplayResult {
  /// Final rows with their parent twins (the CPA patch decides from
  /// these whether the adder stage can be copied too).
  std::vector<std::vector<TwinnedSignal>> rows;
  /// Parent prefix net/gate -> child net/gate; kNoNet / -1 = no image.
  std::vector<NetId> net_map;
  std::vector<GateId> gate_map;
  std::int64_t copied_gates = 0;
  std::int64_t fresh_gates = 0;
};

/// Copies parent gates [begin, end) into `nl` in order, remapping inputs
/// through `net_map` and recording the freshly allocated outputs in
/// `net_map`/`gate_map`. The building block of both the CT replay and
/// the CPA-region copy.
void copy_gate_region(Netlist& nl, const Netlist& parent, GateId begin,
                      GateId end, std::vector<NetId>& net_map,
                      std::vector<GateId>& gate_map);

/// Parent-relative CT build (FIFO ordering only). `columns` must be the
/// child's partial-product bits; when `parent` is given, the child
/// netlist must already contain the parent's PPG region verbatim (see
/// Netlist::clone_head) and `columns` must equal the trace's
/// ppg_columns. With `parent == nullptr` every cell runs the real
/// emitter — that is the traced from-scratch build, byte-identical to
/// build_compressor_tree. `record`, when non-null, captures this
/// build's trace so the result can serve as a parent later.
CtReplayResult replay_compressor_tree(LogicBuilder& lb,
                                      const ct::CompressorTree& tree,
                                      const ColumnSignals& columns,
                                      const Netlist* parent,
                                      const ct::CompressorTree* parent_tree,
                                      const CtBuildTrace* parent_trace,
                                      CtBuildTrace* record);

}  // namespace rlmul::netlist
