#include "netlist/cell_library.hpp"

#include <stdexcept>

namespace rlmul::netlist {

namespace {

/// Build the drive-strength ladder for a cell from its X1 figures.
/// Area and input cap grow with drive; resistance shrinks. The ratios
/// loosely track NanGate45's X1/X2/X4 rows.
std::vector<DriveVariant> ladder(double area, double cap, double res,
                                 double leak, int steps = 3) {
  std::vector<DriveVariant> out;
  double a = area;
  double c = cap;
  double r = res;
  double l = leak;
  for (int i = 0; i < steps; ++i) {
    out.push_back(DriveVariant{a, c, r, l});
    a *= 1.6;
    c *= 1.9;
    r *= 0.52;
    l *= 1.8;
  }
  return out;
}

CellSpec make(CellKind kind, double area, double cap, double res,
              double leak, std::vector<std::vector<double>> intrinsic,
              double energy, int steps = 3) {
  CellSpec s;
  s.kind = kind;
  s.intrinsic = std::move(intrinsic);
  s.variants = ladder(area, cap, res, leak, steps);
  s.internal_energy_fj = energy;
  return s;
}

/// intrinsic matrix where all inputs share the same arc delay.
std::vector<std::vector<double>> uniform(int nin, double d) {
  return std::vector<std::vector<double>>(
      static_cast<std::size_t>(nin), std::vector<double>{d});
}

}  // namespace

CellLibrary::CellLibrary() {
  specs_.resize(static_cast<std::size_t>(num_cell_kinds()));
  auto put = [&](CellSpec s) {
    specs_[static_cast<std::size_t>(s.kind)] = std::move(s);
  };

  // kind, area um^2 (NanGate45 X1), cap fF, res ps/fF, leak nW,
  // intrinsic ps, toggle energy fJ
  put(make(CellKind::kInv, 0.532, 1.0, 6.0, 1.2, uniform(1, 6.0), 0.35));
  put(make(CellKind::kBuf, 0.798, 1.0, 4.5, 1.4, uniform(1, 14.0), 0.55));
  put(make(CellKind::kNand2, 0.798, 1.1, 7.0, 1.6, uniform(2, 8.0), 0.55));
  put(make(CellKind::kNor2, 0.798, 1.2, 8.5, 1.9, uniform(2, 10.0), 0.60));
  put(make(CellKind::kAnd2, 1.064, 1.1, 5.5, 2.0, uniform(2, 16.0), 0.70));
  put(make(CellKind::kOr2, 1.064, 1.2, 5.5, 2.1, uniform(2, 17.0), 0.72));
  put(make(CellKind::kAnd3, 1.330, 1.1, 5.8, 2.6, uniform(3, 19.0), 0.85));
  put(make(CellKind::kOr3, 1.330, 1.2, 5.8, 2.7, uniform(3, 20.0), 0.88));
  put(make(CellKind::kXor2, 1.596, 1.8, 7.5, 2.8, uniform(2, 26.0), 1.30));
  put(make(CellKind::kXnor2, 1.596, 1.8, 7.5, 2.8, uniform(2, 26.0), 1.30));
  put(make(CellKind::kAoi21, 1.064, 1.3, 8.0, 2.0, uniform(3, 11.0), 0.70));
  put(make(CellKind::kOai21, 1.064, 1.3, 8.0, 2.0, uniform(3, 11.0), 0.70));
  put(make(CellKind::kMux2, 1.862, 1.4, 7.0, 2.9, uniform(3, 22.0), 1.00));

  // Full adder: distinct arcs per (input, output). Pin order A, B, CI;
  // output order [sum, carry]. Carry arcs are faster than sum arcs,
  // which is what makes carry-chain structures attractive and is the
  // main timing asymmetry the compressor-tree optimization plays with.
  CellSpec fa;
  fa.kind = CellKind::kFa;
  fa.intrinsic = {
      {52.0, 38.0},  // A -> S, A -> CO
      {52.0, 38.0},  // B -> S, B -> CO
      {34.0, 24.0},  // CI -> S, CI -> CO
  };
  fa.variants = ladder(4.256, 1.7, 8.5, 6.5);
  fa.internal_energy_fj = 3.1;
  put(std::move(fa));

  CellSpec ha;
  ha.kind = CellKind::kHa;
  ha.intrinsic = {
      {30.0, 18.0},  // A -> S, A -> CO
      {30.0, 18.0},  // B -> S, B -> CO
  };
  ha.variants = ladder(2.660, 1.5, 8.0, 4.0);
  ha.internal_energy_fj = 1.8;
  put(std::move(ha));

  // Dedicated 4:2 compressor cell: cheaper and shallower than the
  // FA+HA pair it replaces (the transmission-gate designs the paper's
  // related work cites), which is what makes the fuse action
  // worthwhile. Pin order A, B, C, D; outputs [sum, co1, co2].
  CellSpec c42;
  c42.kind = CellKind::kC42;
  c42.intrinsic = {
      {62.0, 40.0, 46.0},  // A -> S / CO1 / CO2
      {62.0, 40.0, 46.0},  // B
      {62.0, 40.0, 46.0},  // C
      {40.0, 40.0, 26.0},  // D (late input: skips the first XOR level)
  };
  c42.variants = ladder(5.852, 1.7, 8.5, 9.0);
  c42.internal_energy_fj = 4.2;
  put(std::move(c42));

  CellSpec dff;
  dff.kind = CellKind::kDff;
  dff.intrinsic = uniform(1, 42.0);  // clock-to-Q
  dff.variants = ladder(4.522, 1.2, 7.0, 9.0);
  dff.setup_ps = 28.0;
  dff.internal_energy_fj = 2.4;
  put(std::move(dff));

  put(make(CellKind::kTieLo, 0.266, 0.0, 1.0, 0.4, {}, 0.0, 1));
  put(make(CellKind::kTieHi, 0.266, 0.0, 1.0, 0.4, {}, 0.0, 1));
}

const CellLibrary& CellLibrary::nangate45() {
  static const CellLibrary lib;
  return lib;
}

const CellSpec& CellLibrary::spec(CellKind kind) const {
  return specs_[static_cast<std::size_t>(kind)];
}

int CellLibrary::num_variants(CellKind kind) const {
  return static_cast<int>(spec(kind).variants.size());
}

double CellLibrary::area(CellKind kind, int variant) const {
  return spec(kind).variants[static_cast<std::size_t>(variant)].area_um2;
}

double CellLibrary::input_cap(CellKind kind, int variant) const {
  return spec(kind).variants[static_cast<std::size_t>(variant)].input_cap_ff;
}

double CellLibrary::drive_res(CellKind kind, int variant) const {
  return spec(kind).variants[static_cast<std::size_t>(variant)].res_ps_per_ff;
}

double CellLibrary::leakage(CellKind kind, int variant) const {
  return spec(kind).variants[static_cast<std::size_t>(variant)].leakage_nw;
}

double CellLibrary::intrinsic(CellKind kind, int in_pin, int out_pin) const {
  const auto& m = spec(kind).intrinsic;
  if (in_pin < 0 || in_pin >= static_cast<int>(m.size())) {
    throw std::out_of_range("intrinsic: bad input pin");
  }
  const auto& row = m[static_cast<std::size_t>(in_pin)];
  // Single-column rows serve every output (only FA/HA have two columns).
  const int col = out_pin < static_cast<int>(row.size()) ? out_pin : 0;
  return row[static_cast<std::size_t>(col)];
}

double netlist_area(const Netlist& nl, const CellLibrary& lib) {
  double total = 0.0;
  for (const auto& g : nl.gates()) {
    total += lib.area(g.kind, g.variant);
  }
  return total;
}

}  // namespace rlmul::netlist
