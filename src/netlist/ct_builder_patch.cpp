// Parent-relative compressor-tree replay (delta evaluation). The replay
// mirrors build_compressor_tree's FIFO emission loop exactly — same cell
// order, same take() semantics, same emitter calls — but walks the
// parent's recorded trace in lockstep and copies the gates of cells
// whose inputs are positionally identical to the parent's instead of
// re-deriving them. Bit-identity with the from-scratch builder is a
// property-tested contract (tests/test_delta_eval.cpp).

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "netlist/ct_builder.hpp"

namespace rlmul::netlist {

namespace {

/// FIFO take over twinned bits; mirrors the FIFO branch of the
/// builder's take().
std::vector<TwinnedSignal> take(std::vector<TwinnedSignal>& bits,
                                std::size_t n) {
  std::vector<TwinnedSignal> out;
  out.assign(bits.begin(), bits.begin() + static_cast<std::ptrdiff_t>(n));
  bits.erase(bits.begin(), bits.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

}  // namespace

void copy_gate_region(Netlist& nl, const Netlist& parent, GateId begin,
                      GateId end, std::vector<NetId>& net_map,
                      std::vector<GateId>& gate_map) {
  for (GateId pg = begin; pg < end; ++pg) {
    const Gate& g = parent.gates()[static_cast<std::size_t>(pg)];
    PinList ins;
    for (NetId n : g.inputs) {
      const NetId mapped = net_map[static_cast<std::size_t>(n)];
      if (mapped == kNoNet) {
        throw std::logic_error("copy_gate_region: unmapped input net");
      }
      ins.push_back(mapped);
    }
    const GateId cg = nl.add_gate(g.kind, ins);
    const Gate& cgate = nl.gates()[static_cast<std::size_t>(cg)];
    for (std::size_t o = 0; o < g.outputs.size(); ++o) {
      net_map[static_cast<std::size_t>(g.outputs[o])] = cgate.outputs[o];
    }
    gate_map[static_cast<std::size_t>(pg)] = cg;
  }
}

CtReplayResult replay_compressor_tree(LogicBuilder& lb,
                                      const ct::CompressorTree& tree,
                                      const ColumnSignals& columns,
                                      const Netlist* parent,
                                      const ct::CompressorTree* parent_tree,
                                      const CtBuildTrace* parent_trace,
                                      CtBuildTrace* record) {
  Netlist& nl = lb.netlist();
  const int cols = tree.columns();
  if (static_cast<int>(columns.size()) != cols) {
    throw std::invalid_argument("replay_compressor_tree: column count");
  }
  for (int j = 0; j < cols; ++j) {
    if (static_cast<int>(columns[static_cast<std::size_t>(j)].size()) !=
        tree.pp[static_cast<std::size_t>(j)]) {
      throw std::invalid_argument(
          "replay_compressor_tree: column height mismatch with tree.pp");
    }
  }
  const bool have_parent =
      parent != nullptr && parent_tree != nullptr && parent_trace != nullptr;
  if (have_parent && parent_trace->cols != cols) {
    throw std::invalid_argument("replay_compressor_tree: parent column count");
  }

  const ct::StageAssignment plan = ct::assign_stages(tree);
  ct::StageAssignment pplan;
  if (have_parent) pplan = ct::assign_stages(*parent_tree);

  CtReplayResult res;
  if (have_parent) {
    res.net_map.assign(static_cast<std::size_t>(parent->num_nets()), kNoNet);
    res.gate_map.assign(static_cast<std::size_t>(parent->num_gates()), -1);
    // The child netlist starts as a verbatim clone of the parent's PPG
    // region, so the map is the identity there.
    for (std::int32_t n = 0; n < parent_trace->ppg_nets; ++n) {
      res.net_map[static_cast<std::size_t>(n)] = n;
    }
    for (std::int32_t g = 0; g < parent_trace->ppg_gates; ++g) {
      res.gate_map[static_cast<std::size_t>(g)] = g;
    }
  }
  auto remap = [&res](Signal s) -> Signal {
    if (s.is_const()) return s;
    return Signal::of(res.net_map[static_cast<std::size_t>(s.net)]);
  };

  if (record != nullptr) {
    record->ppg_columns = columns;
    record->ppg_gates = nl.num_gates();
    record->ppg_nets = nl.num_nets();
    record->stages = plan.stages;
    record->cols = cols;
    record->cell_gate_begin.clear();
    record->here_begin.clear();
    record->left_begin.clear();
    record->here.clear();
    record->left.clear();
  }

  // Child queues carry twins; the parent's queues are simulated from
  // the trace alongside (plain signals — the trace holds every push).
  std::vector<std::vector<TwinnedSignal>> avail(
      static_cast<std::size_t>(cols));
  std::vector<std::vector<TwinnedSignal>> pending(
      static_cast<std::size_t>(cols));
  std::vector<std::vector<Signal>> pavail(static_cast<std::size_t>(cols));
  std::vector<std::vector<Signal>> ppending(static_cast<std::size_t>(cols));
  for (int j = 0; j < cols; ++j) {
    for (const Signal& s : columns[static_cast<std::size_t>(j)]) {
      // When a parent is present the child's PPG bits *are* the
      // parent's (cloned region), so each seeds with itself as twin.
      avail[static_cast<std::size_t>(j)].push_back({s, s, have_parent});
    }
    if (have_parent) {
      for (const Signal& s :
           parent_trace->ppg_columns[static_cast<std::size_t>(j)]) {
        pavail[static_cast<std::size_t>(j)].push_back(s);
      }
    }
  }

  auto starved = []() -> std::logic_error {
    return std::logic_error("CT build: stage plan starved a column");
  };

  const int pstages = have_parent ? pplan.stages : 0;
  const int all_stages = std::max(plan.stages, pstages);
  for (int s = 0; s < all_stages; ++s) {
    for (int j = 0; j < cols; ++j) {
      const bool top = (j + 1 == cols);
      auto& bits = avail[static_cast<std::size_t>(j)];
      auto& here = pending[static_cast<std::size_t>(j)];
      auto& left = top ? here : pending[static_cast<std::size_t>(j) + 1];

      int n42 = 0, n32 = 0, n22 = 0;
      if (s < plan.stages) {
        n42 = plan.t42[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
        n32 = plan.t32[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
        n22 = plan.t22[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
      }
      int pn42 = 0, pn32 = 0, pn22 = 0;
      if (have_parent && s < pstages) {
        pn42 =
            pplan.t42[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
        pn32 =
            pplan.t32[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
        pn22 =
            pplan.t22[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
      }
      const std::size_t consumed =
          static_cast<std::size_t>(4 * n42 + 3 * n32 + 2 * n22);
      const std::size_t pconsumed =
          static_cast<std::size_t>(4 * pn42 + 3 * pn32 + 2 * pn22);
      auto& pbits = pavail[static_cast<std::size_t>(j)];
      auto& phere = ppending[static_cast<std::size_t>(j)];
      auto& pleft = top ? phere : ppending[static_cast<std::size_t>(j) + 1];

      // Clean iff this cell compresses exactly like the parent's and
      // every bit it is about to consume is the image of the bit the
      // parent consumed at the same position. Constant-ness rides along
      // (twins preserve it), so the folder's decisions match too.
      bool clean = have_parent && s < pstages && n42 == pn42 && n32 == pn32 &&
                   n22 == pn22 && bits.size() >= consumed &&
                   pbits.size() >= pconsumed;
      if (clean) {
        for (std::size_t k = 0; k < consumed; ++k) {
          if (!bits[k].has_twin || !(bits[k].twin == pbits[k])) {
            clean = false;
            break;
          }
        }
      }

      const int gate_mark = nl.num_gates();
      const std::size_t here_mark = here.size();
      const std::size_t left_mark = top ? 0 : left.size();
      if (record != nullptr && s < plan.stages) {
        record->cell_gate_begin.push_back(gate_mark);
        record->here_begin.push_back(
            static_cast<std::int32_t>(record->here.size()));
        record->left_begin.push_back(
            static_cast<std::int32_t>(record->left.size()));
      }

      if (clean) {
        const std::size_t pc = static_cast<std::size_t>(s * cols + j);
        const GateId pgb = parent_trace->cell_gate_begin[pc];
        const GateId pge = parent_trace->cell_gate_begin[pc + 1];
        copy_gate_region(nl, *parent, pgb, pge, res.net_map, res.gate_map);
        res.copied_gates += pge - pgb;
        bits.erase(bits.begin(),
                   bits.begin() + static_cast<std::ptrdiff_t>(consumed));
        for (std::int32_t k = parent_trace->here_begin[pc];
             k < parent_trace->here_begin[pc + 1]; ++k) {
          const Signal psig = parent_trace->here[static_cast<std::size_t>(k)];
          here.push_back({remap(psig), psig, true});
        }
        for (std::int32_t k = parent_trace->left_begin[pc];
             k < parent_trace->left_begin[pc + 1]; ++k) {
          const Signal psig = parent_trace->left[static_cast<std::size_t>(k)];
          left.push_back({remap(psig), psig, true});
        }
      } else if (s < plan.stages) {
        // Real emitter, exactly build_compressor_tree's FIFO loop.
        for (int k = 0; k < n42; ++k) {
          if (bits.size() < 4) throw starved();
          const auto in = take(bits, 4);
          if (top) {
            here.push_back({lb.xor2(lb.xor3(in[0].sig, in[1].sig, in[2].sig),
                                    in[3].sig),
                            Signal{}, false});
          } else {
            const auto c42 =
                lb.compress42(in[0].sig, in[1].sig, in[2].sig, in[3].sig);
            here.push_back({c42.sum, Signal{}, false});
            left.push_back({c42.carry1, Signal{}, false});
            left.push_back({c42.carry2, Signal{}, false});
          }
        }
        for (int k = 0; k < n32; ++k) {
          if (bits.size() < 3) throw starved();
          const auto in = take(bits, 3);
          if (top) {
            here.push_back(
                {lb.xor3(in[0].sig, in[1].sig, in[2].sig), Signal{}, false});
          } else {
            const auto fa = lb.full_add(in[0].sig, in[1].sig, in[2].sig);
            here.push_back({fa.sum, Signal{}, false});
            left.push_back({fa.carry, Signal{}, false});
          }
        }
        for (int k = 0; k < n22; ++k) {
          if (bits.size() < 2) throw starved();
          const auto in = take(bits, 2);
          if (top) {
            here.push_back({lb.xor2(in[0].sig, in[1].sig), Signal{}, false});
          } else {
            const auto ha = lb.half_add(in[0].sig, in[1].sig);
            here.push_back({ha.sum, Signal{}, false});
            left.push_back({ha.carry, Signal{}, false});
          }
        }
        res.fresh_gates += nl.num_gates() - gate_mark;
      }

      // Advance the simulated parent queues whether or not the child
      // cell was clean — later cells compare against the parent's true
      // queue state.
      if (have_parent && s < pstages) {
        if (pbits.size() < pconsumed) {
          throw std::logic_error("replay: parent trace starved a column");
        }
        pbits.erase(pbits.begin(),
                    pbits.begin() + static_cast<std::ptrdiff_t>(pconsumed));
        const std::size_t pc = static_cast<std::size_t>(s * cols + j);
        for (std::int32_t k = parent_trace->here_begin[pc];
             k < parent_trace->here_begin[pc + 1]; ++k) {
          phere.push_back(parent_trace->here[static_cast<std::size_t>(k)]);
        }
        for (std::int32_t k = parent_trace->left_begin[pc];
             k < parent_trace->left_begin[pc + 1]; ++k) {
          pleft.push_back(parent_trace->left[static_cast<std::size_t>(k)]);
        }
      }

      if (record != nullptr && s < plan.stages) {
        for (std::size_t k = here_mark; k < here.size(); ++k) {
          record->here.push_back(here[k].sig);
        }
        if (!top) {
          for (std::size_t k = left_mark; k < left.size(); ++k) {
            record->left.push_back(left[k].sig);
          }
        }
      }
    }
    // Stage boundary for both builds.
    for (int j = 0; j < cols; ++j) {
      auto& p = pending[static_cast<std::size_t>(j)];
      auto& a = avail[static_cast<std::size_t>(j)];
      a.insert(a.end(), p.begin(), p.end());
      p.clear();
      auto& pp = ppending[static_cast<std::size_t>(j)];
      auto& pa = pavail[static_cast<std::size_t>(j)];
      pa.insert(pa.end(), pp.begin(), pp.end());
      pp.clear();
    }
  }
  if (record != nullptr) {
    record->cell_gate_begin.push_back(nl.num_gates());
    record->here_begin.push_back(
        static_cast<std::int32_t>(record->here.size()));
    record->left_begin.push_back(
        static_cast<std::int32_t>(record->left.size()));
  }

  res.rows.resize(static_cast<std::size_t>(cols));
  for (int j = 0; j < cols; ++j) {
    auto& bits = avail[static_cast<std::size_t>(j)];
    if (static_cast<int>(bits.size()) != std::max(tree.final_height(j), 0)) {
      throw std::logic_error("CT build: final height mismatch");
    }
    res.rows[static_cast<std::size_t>(j)] = std::move(bits);
  }
  return res;
}

}  // namespace rlmul::netlist
