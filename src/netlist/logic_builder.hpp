#pragma once
// Constant-folding construction helpers. Builders describe logic in
// terms of `Signal`s, which are either real nets or the constants 0/1;
// gates touching constants are folded away instead of instantiated, the
// way a logic synthesizer would trim them. Only signals that must leave
// the block are materialized as tie cells.

#include "netlist/netlist.hpp"

namespace rlmul::netlist {

/// A net handle or a compile-time constant.
struct Signal {
  NetId net = kNoNet;
  // -1: real net; 0/1: constant
  int constant = -1;

  static Signal of(NetId n) { return Signal{n, -1}; }
  static Signal lo() { return Signal{kNoNet, 0}; }
  static Signal hi() { return Signal{kNoNet, 1}; }
  bool is_const() const { return constant >= 0; }
  bool is_lo() const { return constant == 0; }
  bool is_hi() const { return constant == 1; }
  bool operator==(const Signal&) const = default;
};

class LogicBuilder {
 public:
  explicit LogicBuilder(Netlist& nl) : nl_(nl) {}

  Signal inv(Signal a);
  Signal and2(Signal a, Signal b);
  Signal or2(Signal a, Signal b);
  Signal xor2(Signal a, Signal b);
  Signal xnor2(Signal a, Signal b);
  Signal mux2(Signal a, Signal b, Signal sel);  ///< sel ? b : a

  /// Full/half adder on signals; constants select the cheaper cell
  /// (e.g. an FA with a constant-0 carry-in degrades to an HA).
  struct AddOut {
    Signal sum;
    Signal carry;
  };
  AddOut full_add(Signal a, Signal b, Signal c);
  AddOut half_add(Signal a, Signal b);

  /// Sum-only compressors for the top column where carries are
  /// discarded (mod-2^W arithmetic).
  Signal xor3(Signal a, Signal b, Signal c);

  /// 4:2 compressor: a+b+c+d == sum + 2*(carry1 + carry2). Emits the
  /// dedicated C42 cell when all inputs are live; degrades to the
  /// FA/HA composition when constants allow folding.
  struct C42Out {
    Signal sum;
    Signal carry1;
    Signal carry2;
  };
  C42Out compress42(Signal a, Signal b, Signal c, Signal d);

  /// Returns a real net for the signal, instantiating a tie cell if it
  /// is constant.
  NetId materialize(Signal s);

  Netlist& netlist() { return nl_; }

 private:
  Netlist& nl_;
};

}  // namespace rlmul::netlist
