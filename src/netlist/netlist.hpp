#pragma once
// Gate-level netlist. This is the substrate that replaces EasyMAC's RTL
// output in the paper's flow: the compressor tree, the partial-product
// generators and the final carry-propagation adder are all emitted as a
// flat netlist of standard cells, which the synthesis, STA, power and
// simulation engines then consume.

#include <array>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace rlmul::netlist {

using NetId = std::int32_t;
using GateId = std::int32_t;

constexpr NetId kNoNet = -1;

/// Standard-cell functions available in the library. Multi-output cells
/// (FA, HA) list their outputs in a fixed order documented per kind.
enum class CellKind : std::uint8_t {
  kInv,
  kBuf,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kAnd3,
  kOr3,
  kXor2,
  kXnor2,
  kAoi21,  ///< !((a & b) | c)
  kOai21,  ///< !((a | b) & c)
  kMux2,   ///< s ? b : a   (inputs: a, b, s)
  kFa,     ///< full adder; outputs: [sum, carry]
  kHa,     ///< half adder; outputs: [sum, carry]
  kC42,    ///< 4:2 compressor; inputs [a,b,c,d]; outputs [sum, co1, co2]
  kDff,    ///< D flip-flop; inputs: [d]; output: [q] (clock implicit)
  kTieLo,  ///< constant 0 source, no inputs
  kTieHi,  ///< constant 1 source, no inputs
};

int num_inputs(CellKind kind);
int num_outputs(CellKind kind);
const char* cell_kind_name(CellKind kind);
int num_cell_kinds();

/// Fixed-capacity inline pin list. The widest cell in the library has
/// 4 input pins (the 4:2 compressor) and 3 output pins, so pin storage
/// lives inside the Gate record itself: gates are trivially copyable,
/// a netlist copy is one flat buffer copy instead of two heap
/// allocations per gate, and pin reads never chase a pointer. The
/// interface is the std::vector subset the pin-walking code uses.
class PinList {
 public:
  static constexpr int kCapacity = 4;

  PinList() = default;
  PinList(std::initializer_list<NetId> pins) {
    for (NetId n : pins) push_back(n);
  }
  /// Implicit, for call sites that assemble pins in a std::vector.
  PinList(const std::vector<NetId>& pins) {
    for (NetId n : pins) push_back(n);
  }

  void push_back(NetId n) {
    if (size_ == kCapacity) throw std::length_error("PinList: full");
    data_[static_cast<std::size_t>(size_++)] = n;
  }
  std::size_t size() const { return static_cast<std::size_t>(size_); }
  bool empty() const { return size_ == 0; }
  NetId& operator[](std::size_t i) { return data_[i]; }
  const NetId& operator[](std::size_t i) const { return data_[i]; }
  NetId* begin() { return data_.data(); }
  NetId* end() { return data_.data() + size_; }
  const NetId* begin() const { return data_.data(); }
  const NetId* end() const { return data_.data() + size_; }

  friend bool operator==(const PinList&, const PinList&) = default;

 private:
  std::int32_t size_ = 0;
  std::array<NetId, kCapacity> data_{};  // zero-filled: == is memberwise
};

struct Gate {
  CellKind kind = CellKind::kInv;
  int variant = 0;  ///< drive-strength index into the library (0 = X1)
  PinList inputs;
  PinList outputs;
};

/// Flat netlist with primary inputs/outputs. Nets are integer handles;
/// every net has at most one driver (a gate output or a primary input).
class Netlist {
 public:
  NetId new_net();
  /// Convenience: allocate `n` fresh nets.
  std::vector<NetId> new_nets(int n);

  /// Adds a gate; output nets are freshly allocated and returned via the
  /// gate record. Checks pin counts.
  GateId add_gate(CellKind kind, PinList inputs);

  /// Adds a gate driving pre-allocated output nets.
  GateId add_gate_onto(CellKind kind, PinList inputs, PinList outputs);

  /// Pre-size the gate table for `n` total gates (builders that know
  /// roughly how much they will append call this to avoid re-growing
  /// the — now flat, trivially-copyable — gate buffer).
  void reserve_gates(int n) { gates_.reserve(static_cast<std::size_t>(n)); }

  NetId add_input(const std::string& name);
  void mark_output(NetId net, const std::string& name);

  /// Constant sources, created lazily (one tie cell each).
  NetId tie_lo();
  NetId tie_hi();

  /// Non-allocating views of the tie nets: kNoNet when the constant has
  /// not been materialized. The delta path uses these to mirror a
  /// parent's tie cells onto a patched child without creating new ones.
  NetId tie_lo_net() const { return tie_lo_; }
  NetId tie_hi_net() const { return tie_hi_; }

  /// Installs pre-existing tie nets (gates already copied into this
  /// netlist) so later materialize() calls reuse them — exactly what a
  /// from-scratch build would have cached. Delta-evaluation only.
  void adopt_ties(NetId lo, NetId hi) {
    tie_lo_ = lo;
    tie_hi_ = hi;
  }

  /// Prefix copy: the first `num_gates` gates and `num_nets` nets of
  /// this netlist, with primary inputs (and any outputs / tie nets that
  /// fall inside the region) carried over. Because builders append
  /// strictly (gates and nets are never renumbered), the head of a
  /// netlist is itself a valid netlist — the delta path clones a
  /// parent's PPG region this way instead of re-deriving it.
  Netlist clone_head(int num_gates, int num_nets) const;

  int num_nets() const { return next_net_; }
  int num_gates() const { return static_cast<int>(gates_.size()); }
  const std::vector<Gate>& gates() const { return gates_; }
  std::vector<Gate>& gates() { return gates_; }

  const std::vector<NetId>& primary_inputs() const { return inputs_; }
  const std::vector<NetId>& primary_outputs() const { return outputs_; }
  const std::vector<std::string>& input_names() const { return input_names_; }
  const std::vector<std::string>& output_names() const {
    return output_names_;
  }

  /// driver_gate()[net] = gate driving the net, or -1 for primary
  /// inputs / floating nets. Recomputed on demand.
  std::vector<GateId> driver_gate() const;

  /// fanout()[net] = list of (gate, input-pin) pairs reading the net.
  std::vector<std::vector<std::pair<GateId, int>>> fanout() const;

  /// Fanout in CSR form: the sink gates of net n occupy
  /// fo_gate[fo_base[n] .. fo_base[n+1]), in ascending gate order. Two
  /// flat arrays instead of one vector per net, so building it performs
  /// no per-net heap allocation — the representation sta::TimingGraph
  /// keeps.
  void fanout_csr(std::vector<std::int32_t>& fo_base,
                  std::vector<GateId>& fo_gate) const;

  /// Topological order of gates (inputs before consumers). Throws on
  /// combinational cycles (DFF outputs count as sources).
  std::vector<GateId> topo_order() const;

  /// Same order, reusing caller-provided driver_gate()/fanout_csr()
  /// results so one traversal can serve several consumers
  /// (sta::TimingGraph builds all of them and would otherwise recompute
  /// the maps twice).
  std::vector<GateId> topo_order(const std::vector<GateId>& drv,
                                 const std::vector<std::int32_t>& fo_base,
                                 const std::vector<GateId>& fo_gate) const;

  /// Number of cells of each kind (histogram indexed by CellKind).
  std::vector<int> kind_histogram() const;

 private:
  int next_net_ = 0;
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<std::string> input_names_;
  std::vector<NetId> outputs_;
  std::vector<std::string> output_names_;
  NetId tie_lo_ = kNoNet;
  NetId tie_hi_ = kNoNet;
};

}  // namespace rlmul::netlist
