#pragma once
// Gate-level netlist. This is the substrate that replaces EasyMAC's RTL
// output in the paper's flow: the compressor tree, the partial-product
// generators and the final carry-propagation adder are all emitted as a
// flat netlist of standard cells, which the synthesis, STA, power and
// simulation engines then consume.

#include <cstdint>
#include <string>
#include <vector>

namespace rlmul::netlist {

using NetId = std::int32_t;
using GateId = std::int32_t;

constexpr NetId kNoNet = -1;

/// Standard-cell functions available in the library. Multi-output cells
/// (FA, HA) list their outputs in a fixed order documented per kind.
enum class CellKind : std::uint8_t {
  kInv,
  kBuf,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kAnd3,
  kOr3,
  kXor2,
  kXnor2,
  kAoi21,  ///< !((a & b) | c)
  kOai21,  ///< !((a | b) & c)
  kMux2,   ///< s ? b : a   (inputs: a, b, s)
  kFa,     ///< full adder; outputs: [sum, carry]
  kHa,     ///< half adder; outputs: [sum, carry]
  kC42,    ///< 4:2 compressor; inputs [a,b,c,d]; outputs [sum, co1, co2]
  kDff,    ///< D flip-flop; inputs: [d]; output: [q] (clock implicit)
  kTieLo,  ///< constant 0 source, no inputs
  kTieHi,  ///< constant 1 source, no inputs
};

int num_inputs(CellKind kind);
int num_outputs(CellKind kind);
const char* cell_kind_name(CellKind kind);
int num_cell_kinds();

struct Gate {
  CellKind kind = CellKind::kInv;
  int variant = 0;  ///< drive-strength index into the library (0 = X1)
  std::vector<NetId> inputs;
  std::vector<NetId> outputs;
};

/// Flat netlist with primary inputs/outputs. Nets are integer handles;
/// every net has at most one driver (a gate output or a primary input).
class Netlist {
 public:
  NetId new_net();
  /// Convenience: allocate `n` fresh nets.
  std::vector<NetId> new_nets(int n);

  /// Adds a gate; output nets are freshly allocated and returned via the
  /// gate record. Checks pin counts.
  GateId add_gate(CellKind kind, std::vector<NetId> inputs);

  /// Adds a gate driving pre-allocated output nets.
  GateId add_gate_onto(CellKind kind, std::vector<NetId> inputs,
                       std::vector<NetId> outputs);

  NetId add_input(const std::string& name);
  void mark_output(NetId net, const std::string& name);

  /// Constant sources, created lazily (one tie cell each).
  NetId tie_lo();
  NetId tie_hi();

  int num_nets() const { return next_net_; }
  int num_gates() const { return static_cast<int>(gates_.size()); }
  const std::vector<Gate>& gates() const { return gates_; }
  std::vector<Gate>& gates() { return gates_; }

  const std::vector<NetId>& primary_inputs() const { return inputs_; }
  const std::vector<NetId>& primary_outputs() const { return outputs_; }
  const std::vector<std::string>& input_names() const { return input_names_; }
  const std::vector<std::string>& output_names() const {
    return output_names_;
  }

  /// driver_gate()[net] = gate driving the net, or -1 for primary
  /// inputs / floating nets. Recomputed on demand.
  std::vector<GateId> driver_gate() const;

  /// fanout()[net] = list of (gate, input-pin) pairs reading the net.
  std::vector<std::vector<std::pair<GateId, int>>> fanout() const;

  /// Topological order of gates (inputs before consumers). Throws on
  /// combinational cycles (DFF outputs count as sources).
  std::vector<GateId> topo_order() const;

  /// Number of cells of each kind (histogram indexed by CellKind).
  std::vector<int> kind_histogram() const;

 private:
  int next_net_ = 0;
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<std::string> input_names_;
  std::vector<NetId> outputs_;
  std::vector<std::string> output_names_;
  NetId tie_lo_ = kNoNet;
  NetId tie_hi_ = kNoNet;
};

}  // namespace rlmul::netlist
