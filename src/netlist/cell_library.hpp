#pragma once
// NanGate-45nm-flavoured standard-cell library. Areas follow the open
// NanGate 45 nm Open Cell Library (0.532 um^2 per INV_X1 site and
// multiples thereof); timing uses a logical-effort style linear model:
//
//   arc delay [ps] = intrinsic(arc) + drive_resistance * load_cap
//
// where drive_resistance shrinks with the drive-strength variant and
// input capacitance grows with it. This is the knob the synthesis
// engine turns when it sizes gates against a target delay, exactly the
// role OpenROAD/NanGate play in the paper's reward loop.

#include <vector>

#include "netlist/netlist.hpp"

namespace rlmul::netlist {

/// One drive strength of a cell (X1, X2, X4, ...).
struct DriveVariant {
  double area_um2 = 0.0;    ///< placed area
  double input_cap_ff = 0.0;  ///< per input pin
  double res_ps_per_ff = 0.0;  ///< output drive resistance
  double leakage_nw = 0.0;   ///< static leakage
};

/// Timing/power description of one cell function.
struct CellSpec {
  CellKind kind = CellKind::kInv;
  /// intrinsic[in][out]: fixed arc delay in ps (X1 variant).
  std::vector<std::vector<double>> intrinsic;
  std::vector<DriveVariant> variants;
  /// For DFFs only: clock-to-Q intrinsic is intrinsic[0][0]; setup time:
  double setup_ps = 0.0;
  /// Average output switching activity factor relative to input activity
  /// (used by the probabilistic power model).
  double internal_energy_fj = 0.0;  ///< energy per output toggle
};

/// Immutable library shared across the process.
class CellLibrary {
 public:
  static const CellLibrary& nangate45();

  const CellSpec& spec(CellKind kind) const;
  int num_variants(CellKind kind) const;

  double area(CellKind kind, int variant) const;
  double input_cap(CellKind kind, int variant) const;
  double drive_res(CellKind kind, int variant) const;
  double leakage(CellKind kind, int variant) const;
  double intrinsic(CellKind kind, int in_pin, int out_pin) const;
  double setup(CellKind kind) const { return spec(kind).setup_ps; }
  double internal_energy(CellKind kind) const {
    return spec(kind).internal_energy_fj;
  }

  /// Wire parasitics: added load per fanout pin plus a fixed stub.
  double wire_cap_per_fanout_ff() const { return 0.5; }
  double wire_cap_fixed_ff() const { return 0.3; }
  /// Load assumed on primary outputs.
  double output_load_ff() const { return 3.0; }

 private:
  CellLibrary();
  std::vector<CellSpec> specs_;
};

/// Total placed area of a netlist in um^2 (sum over gates).
double netlist_area(const Netlist& nl, const CellLibrary& lib);

}  // namespace rlmul::netlist
