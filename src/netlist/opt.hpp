#pragma once
// Netlist cleanup passes, the light-weight stand-ins for the logic
// optimization a synthesis tool runs before mapping:
//
//  * constant propagation — gates fed by tie cells fold away (the
//    LogicBuilder already folds at construction time; this pass covers
//    netlists assembled by hand or mutated after construction);
//  * dead-logic sweep — gates whose outputs reach no primary output or
//    register are removed;
//  * fanout buffering — nets driving more than `max_fanout` sinks get a
//    buffer tree, trading area for delay on heavily loaded nets.

#include "netlist/netlist.hpp"

namespace rlmul::netlist {

struct OptStats {
  int gates_before = 0;
  int gates_after = 0;
  int constants_folded = 0;
  int buffers_inserted = 0;
  int pairs_remapped = 0;
};

struct OptOptions {
  bool propagate_constants = true;
  bool sweep_dead = true;
  /// Fuse single-fanout gate+INV pairs into complex cells
  /// (AND2+INV -> NAND2, OR2+INV -> NOR2, XOR2+INV -> XNOR2, and the
  /// inverse unwrappings) — classic area-recovery technology remapping.
  bool remap = false;
  int max_fanout = 0;  ///< 0 = no buffering
};

/// Returns an optimized copy; primary I/O names and order are
/// preserved, internal nets are renumbered.
Netlist optimize(const Netlist& nl, const OptOptions& opts,
                 OptStats* stats = nullptr);

/// Standalone remap pass (also reachable through OptOptions::remap).
/// Returns the rewritten netlist and the number of fused pairs.
Netlist remap_area(const Netlist& nl, int* fused = nullptr);

}  // namespace rlmul::netlist
