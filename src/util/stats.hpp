#pragma once
// Small descriptive-statistics helpers used by the benchmark harnesses
// (box plots in Fig 7/8, trajectory bands in Fig 12).

#include <cstddef>
#include <vector>

namespace rlmul::util {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  ///< population variance
double stddev(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0, 1]. Requires non-empty input.
double quantile(std::vector<double> xs, double q);

/// Five-number summary for box plots.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

BoxStats box_stats(const std::vector<double>& xs);

/// Pearson correlation coefficient. Returns 0 for degenerate inputs.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace rlmul::util
