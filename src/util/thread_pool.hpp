#pragma once
// Small fixed-size thread pool shared by the synthesis fast path: the
// evaluator fans the per-target sizings (and the independent CPA
// builds behind them) out to these workers. Tasks must never block on
// other pool tasks — the pool is used strictly one level deep, so a
// single worker (the 1-CPU CI case) still drains every queue.

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace rlmul::util {

class ThreadPool {
 public:
  /// `num_threads <= 0` falls back to one worker.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; the future resolves when a worker has run it.
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      LockGuard lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Process-wide pool, sized by RLMUL_SYNTH_THREADS (default: hardware
  /// concurrency). Constructed on first use, joined at exit.
  static ThreadPool& shared();

 private:
  void worker_loop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ RLMUL_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  ///< written only in ctor/dtor
  bool stop_ RLMUL_GUARDED_BY(mu_) = false;
};

}  // namespace rlmul::util
