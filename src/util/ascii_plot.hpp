#pragma once
// Terminal scatter plots for the bench harness: the Pareto-frontier
// figures (Figs 9-11 of the paper) render as ASCII charts next to the
// numeric series, so a bench run is visually checkable without any
// plotting stack.

#include <string>
#include <utility>
#include <vector>

namespace rlmul::util {

struct PlotSeries {
  std::string name;
  std::vector<std::pair<double, double>> points;  ///< (x, y)
};

struct PlotOptions {
  int width = 64;   ///< plot area columns
  int height = 16;  ///< plot area rows
  std::string x_label = "x";
  std::string y_label = "y";
};

/// Renders all series into one chart. Each series gets a distinct
/// glyph (shown in the legend); later series draw over earlier ones
/// when points collide. Returns a multi-line string.
std::string ascii_scatter(const std::vector<PlotSeries>& series,
                          const PlotOptions& opts = {});

}  // namespace rlmul::util
