#include "util/thread_pool.hpp"

#include "util/config.hpp"

namespace rlmul::util {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = 1;
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(static_cast<int>(env_long(
      "RLMUL_SYNTH_THREADS",
      static_cast<long>(std::thread::hardware_concurrency()))));
  return pool;
}

}  // namespace rlmul::util
