#pragma once
// Deterministic, fast pseudo-random number generation for the whole
// framework. We use xoshiro256** (Blackman & Vigna) rather than
// std::mt19937 so that results are reproducible across standard-library
// implementations and fast enough for the inner loops of the logic
// simulator and the RL agents.

#include <array>
#include <cstdint>
#include <vector>

namespace rlmul::util {

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-seed via splitmix64 so that nearby seeds give unrelated streams.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Standard normal via Box–Muller.
  double next_gaussian();

  /// Bernoulli trial with probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Sample an index from a discrete (unnormalized, non-negative)
  /// weight vector. Returns weights.size() if the total mass is zero.
  std::size_t sample_discrete(const std::vector<double>& weights);

  /// Produce an independent child stream (for per-thread RNGs).
  Rng split();

  /// Complete serializable generator state, including the cached
  /// Box–Muller spare, so a restored generator continues the exact
  /// stream (search::Checkpoint round-trips depend on this).
  struct State {
    std::array<std::uint64_t, 4> s{};
    bool have_gaussian = false;
    double spare_gaussian = 0.0;
  };
  State state() const { return {s_, have_gaussian_, spare_gaussian_}; }
  /// Restores a state captured by state(). The word vector of a live
  /// generator is never all-zero; restoring an all-zero state reseeds
  /// (xoshiro cannot escape it).
  void set_state(const State& st);

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace rlmul::util
