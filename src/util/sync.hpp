#pragma once
// Annotated synchronization shims: drop-in wrappers over std::mutex /
// std::condition_variable that carry the Clang thread-safety capability
// attributes from util/thread_annotations.hpp. All shared-state modules
// use these instead of the raw std types so that
// -DRLMUL_THREAD_SAFETY_ANALYSIS=ON (Clang) can prove the lock
// discipline at compile time; under any other compiler they compile to
// exactly the std types with zero overhead.
//
// The condition-variable wait contract: CondVar::wait takes a
// UniqueLock that the analysis considers held across the call. That is
// the right model — the predicate and the code after wait() run with
// the mutex re-acquired, and the transient release inside wait() is
// invisible to (and irrelevant for) lock-discipline checking.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace rlmul::util {

/// std::mutex with a capability attribute so GUARDED_BY/REQUIRES
/// declarations can reference it.
class RLMUL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RLMUL_ACQUIRE() { mu_.lock(); }
  void unlock() RLMUL_RELEASE() { mu_.unlock(); }
  bool try_lock() RLMUL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for interop (CondVar waits through it). Usable
  /// only inside this header's shims — going through native() strips
  /// the capability and hides accesses from the analysis.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::lock_guard over Mutex, visible to the analysis as a scoped
/// acquire/release.
class RLMUL_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) RLMUL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() RLMUL_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over Mutex — the handle CondVar::wait requires.
/// Unlike LockGuard it can be released early and re-acquired.
class RLMUL_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) RLMUL_ACQUIRE(mu)
      : mu_(&mu), lk_(mu.native()) {}
  // Empty body (not `= default`): GNU attributes cannot decorate a
  // defaulted member. The wrapped std::unique_lock still unlocks iff
  // it owns the mutex when the members destruct.
  ~UniqueLock() RLMUL_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() RLMUL_ACQUIRE() { lk_.lock(); }
  void unlock() RLMUL_RELEASE() { lk_.unlock(); }
  bool owns_lock() const { return lk_.owns_lock(); }

  std::unique_lock<std::mutex>& native() { return lk_; }
  Mutex& mutex() RLMUL_RETURN_CAPABILITY(*mu_) { return *mu_; }

 private:
  Mutex* mu_;
  std::unique_lock<std::mutex> lk_;
};

/// std::condition_variable bound to the annotated lock types. The wait
/// overloads re-establish the lock before returning, so callers keep
/// their REQUIRES obligations without extra annotations.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }

  template <class Pred>
  void wait(UniqueLock& lock, Pred pred) {
    cv_.wait(lock.native(), std::move(pred));
  }

  /// Returns the predicate's final value (false = timed out).
  template <class Rep, class Period, class Pred>
  bool wait_for(UniqueLock& lock,
                const std::chrono::duration<Rep, Period>& dur, Pred pred) {
    return cv_.wait_for(lock.native(), dur, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace rlmul::util
