#pragma once
// Process-wide throughput counters for the reward-oracle fast path.
// The paper counts its search budget in EDA-tool calls, so the benches
// report exactly where those calls go: unique evaluations vs cache
// hits, netlists built from scratch vs reused from a prepared design,
// and full vs incremental STA updates. All fields are relaxed atomics —
// they are statistics, not synchronization — so no capability
// annotation applies; reset() is documented single-threaded (benches
// call it between A/B phases with no workers in flight) and a
// concurrent fetch_add against reset() is a torn *snapshot*, never a
// data race.

#include <atomic>
#include <cstdint>
#include <string>

namespace rlmul::util {

struct PerfCounters {
  std::atomic<std::uint64_t> unique_evals{0};   ///< designs synthesized
  std::atomic<std::uint64_t> cache_hits{0};     ///< evaluator cache hits
  std::atomic<std::uint64_t> inflight_waits{0}; ///< dedup'd duplicate work
  std::atomic<std::uint64_t> synth_calls{0};    ///< netlist sizings (CPA x target)
  std::atomic<std::uint64_t> netlists_built{0};    ///< full from-scratch builds
  std::atomic<std::uint64_t> cpa_variants_built{0};///< CPA appended to a prefix
  std::atomic<std::uint64_t> netlists_reused{0};   ///< sized from a cached copy
  std::atomic<std::uint64_t> sta_full_updates{0};
  std::atomic<std::uint64_t> sta_incremental_updates{0};
  std::atomic<std::uint64_t> sta_gates_retimed{0}; ///< gate recomputes, incremental mode
  // Agent-network throughput (how much of a search step the network
  // consumes): wall time inside ResNet forward/backward, wall time and
  // FLOPs inside the nt::sgemm kernels. The formatted line derives
  // nn_gflops (integer GFLOP/s) from the last two.
  std::atomic<std::uint64_t> nn_time_us{0};
  std::atomic<std::uint64_t> gemm_time_us{0};
  std::atomic<std::uint64_t> nn_flops{0};
  // Batched evaluation: how well concurrent evaluate() calls coalesce
  // into shared sweeps. The formatted line derives eval_batch_size_avg
  // (rounded integer designs/batch) from the first two; the wait is
  // the summed time designs sat in the pending queue before their
  // drain started.
  std::atomic<std::uint64_t> eval_batches{0};
  std::atomic<std::uint64_t> eval_batched_designs{0};
  std::atomic<std::uint64_t> eval_batch_coalesce_wait_us{0};
  // Persistent design-space database (dsdb): cross-run cache traffic.
  // A hit is one synthesis this process never had to run.
  std::atomic<std::uint64_t> dsdb_hits{0};
  std::atomic<std::uint64_t> dsdb_misses{0};
  std::atomic<std::uint64_t> dsdb_appends{0};  ///< records journaled
  std::atomic<std::uint64_t> dsdb_flushes{0};  ///< journal flushes
  // Delta evaluation: parent-relative incremental builds. A hit is a
  // design actually patched against a retained parent; a fallback is a
  // hinted evaluation whose parent was evicted or incompatible, so it
  // rebuilt from scratch. fresh/total accumulate rebuilt vs all gates
  // across patched regions; the formatted line derives
  // eval_delta_cone_frac (integer percent rebuilt) from them.
  std::atomic<std::uint64_t> eval_delta_hits{0};
  std::atomic<std::uint64_t> eval_delta_fallbacks{0};
  std::atomic<std::uint64_t> eval_delta_fresh_gates{0};
  std::atomic<std::uint64_t> eval_delta_total_gates{0};

  void reset();
};

/// The process-wide instance.
PerfCounters& perf_counters();

/// One-line `key=value` rendering, stable key order, suitable for CI
/// parsing (`RLMUL_COUNTERS <this>` is the contract the smoke test
/// checks).
std::string format_perf_counters();

}  // namespace rlmul::util
