#pragma once
// Tiny CSV writer used by the benches to dump machine-readable copies
// of every regenerated table/figure (the text output stays the primary
// artifact; the CSVs feed whatever plotting stack the user has).

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace rlmul::util {

class CsvWriter {
 public:
  /// Opens (truncates) the file; throws on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row; fields are quoted when they contain separators.
  void row(const std::vector<std::string>& fields);

  /// Convenience for mixed string/number rows.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& w) : writer_(w) {}
    RowBuilder& add(const std::string& s) {
      fields_.push_back(s);
      return *this;
    }
    RowBuilder& add(double v) {
      std::ostringstream os;
      os << v;
      fields_.push_back(os.str());
      return *this;
    }
    RowBuilder& add(int v) {
      fields_.push_back(std::to_string(v));
      return *this;
    }
    ~RowBuilder() { writer_.row(fields_); }

   private:
    CsvWriter& writer_;
    std::vector<std::string> fields_;
  };

  RowBuilder begin_row() { return RowBuilder(*this); }

 private:
  std::ofstream out_;
};

/// Directory for bench side outputs (env RLMUL_OUT, default "results");
/// created if missing. Returns the path with a trailing slash.
std::string output_dir();

}  // namespace rlmul::util
