#include "util/build_info.hpp"

#include <sstream>

namespace rlmul::util {

std::string build_info() {
  std::ostringstream os;
  os << "compiler=";
#if defined(__clang__)
  os << "clang-" << __clang_major__ << "." << __clang_minor__;
#elif defined(__GNUC__)
  os << "gcc-" << __GNUC__ << "." << __GNUC_MINOR__;
#else
  os << "unknown";
#endif
  // RLMUL_SANITIZERS is injected by cmake/Sanitizers.cmake as the
  // comma-joined -fsanitize= list (e.g. "address,undefined").
#if defined(RLMUL_SANITIZERS)
  os << " sanitizers=" << RLMUL_SANITIZERS;
#else
  os << " sanitizers=none";
#endif
#if defined(RLMUL_TSA_ENABLED)
  os << " thread_safety_analysis=on";
#else
  os << " thread_safety_analysis=off";
#endif
  return os.str();
}

}  // namespace rlmul::util
