#include "util/framing.hpp"

#include <stdexcept>

namespace rlmul::util {

void append_frame(std::vector<std::uint8_t>& out, std::string_view payload) {
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  if (payload.size() != static_cast<std::size_t>(n)) {
    throw std::runtime_error("frame payload exceeds 4 GiB");
  }
  out.push_back(static_cast<std::uint8_t>(n & 0xff));
  out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((n >> 24) & 0xff));
  const std::uint8_t* p = reinterpret_cast<const std::uint8_t*>(payload.data());
  out.insert(out.end(), p, p + payload.size());
}

std::vector<std::uint8_t> encode_frame(std::string_view payload) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + payload.size());
  append_frame(out, payload);
  return out;
}

void FrameParser::feed(const void* data, std::size_t n) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

bool FrameParser::next(std::string* payload) {
  if (poisoned_) {
    throw std::runtime_error("frame parser poisoned by oversized frame");
  }
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection doesn't grow its scratch forever.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  if (buf_.size() - pos_ < 4) return false;
  const std::uint8_t* hdr = buf_.data() + pos_;
  const std::uint32_t n = static_cast<std::uint32_t>(hdr[0]) |
                          (static_cast<std::uint32_t>(hdr[1]) << 8) |
                          (static_cast<std::uint32_t>(hdr[2]) << 16) |
                          (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (static_cast<std::size_t>(n) > max_frame_) {
    poisoned_ = true;
    throw std::runtime_error("oversized frame: " + std::to_string(n) +
                             " bytes (limit " + std::to_string(max_frame_) +
                             ")");
  }
  if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(n)) return false;
  payload->assign(reinterpret_cast<const char*>(buf_.data() + pos_ + 4),
                  static_cast<std::size_t>(n));
  pos_ += 4 + static_cast<std::size_t>(n);
  return true;
}

}  // namespace rlmul::util
