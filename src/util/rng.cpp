#include "util/rng.hpp"

#include <cmath>

namespace rlmul::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  have_gaussian_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_gaussian_ = mag * std::sin(two_pi * u2);
  have_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

std::size_t Rng::sample_discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double pick = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) return i;
  }
  return weights.size() - 1;
}

void Rng::set_state(const State& st) {
  s_ = st.s;
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    reseed(0xDEADBEEFCAFEF00DULL);
    return;
  }
  have_gaussian_ = st.have_gaussian;
  spare_gaussian_ = st.spare_gaussian;
}

Rng Rng::split() {
  Rng child;
  child.s_ = {next(), next(), next(), next()};
  // Guard against the all-zero state, which xoshiro cannot escape.
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0) {
    child.reseed(0xDEADBEEFCAFEF00DULL);
  }
  return child;
}

}  // namespace rlmul::util
