#pragma once
// Portable wrappers over Clang's thread-safety-analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). On Clang,
// building with -DRLMUL_THREAD_SAFETY_ANALYSIS=ON turns lock-discipline
// violations into -Werror=thread-safety build failures; every other
// compiler sees plain no-ops, so the annotations cost nothing and the
// code stays portable. Use them through the util::Mutex / util::CondVar
// / util::LockGuard shims in util/sync.hpp — std::mutex itself carries
// no capability attribute and is invisible to the analysis (and the
// repo lint rejects raw std::mutex members outside that shim).

#if defined(__clang__) && !defined(SWIG)
#define RLMUL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RLMUL_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define RLMUL_CAPABILITY(x) RLMUL_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define RLMUL_SCOPED_CAPABILITY RLMUL_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define RLMUL_GUARDED_BY(x) RLMUL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define RLMUL_PT_GUARDED_BY(x) RLMUL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability (caller must already hold it).
#define RLMUL_REQUIRES(...) \
  RLMUL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called with the capability *not* held.
#define RLMUL_EXCLUDES(...) RLMUL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (and does not release it).
#define RLMUL_ACQUIRE(...) \
  RLMUL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define RLMUL_RELEASE(...) \
  RLMUL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define RLMUL_TRY_ACQUIRE(b, ...) \
  RLMUL_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Declares a required acquisition order between capabilities.
#define RLMUL_ACQUIRED_BEFORE(...) \
  RLMUL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RLMUL_ACQUIRED_AFTER(...) \
  RLMUL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Return value is a reference to data guarded by the capability.
#define RLMUL_RETURN_CAPABILITY(x) RLMUL_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (e.g. locking a
/// runtime-indexed array of shard mutexes). Every use must carry a
/// comment justifying why the discipline holds anyway.
#define RLMUL_NO_THREAD_SAFETY_ANALYSIS \
  RLMUL_THREAD_ANNOTATION(no_thread_safety_analysis)
