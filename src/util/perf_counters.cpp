#include "util/perf_counters.hpp"

#include <sstream>

namespace rlmul::util {

void PerfCounters::reset() {
  unique_evals = 0;
  cache_hits = 0;
  inflight_waits = 0;
  synth_calls = 0;
  netlists_built = 0;
  cpa_variants_built = 0;
  netlists_reused = 0;
  sta_full_updates = 0;
  sta_incremental_updates = 0;
  sta_gates_retimed = 0;
}

PerfCounters& perf_counters() {
  static PerfCounters counters;
  return counters;
}

std::string format_perf_counters() {
  const PerfCounters& c = perf_counters();
  std::ostringstream os;
  os << "unique_evals=" << c.unique_evals.load()
     << " cache_hits=" << c.cache_hits.load()
     << " inflight_waits=" << c.inflight_waits.load()
     << " synth_calls=" << c.synth_calls.load()
     << " netlists_built=" << c.netlists_built.load()
     << " cpa_variants_built=" << c.cpa_variants_built.load()
     << " netlists_reused=" << c.netlists_reused.load()
     << " sta_full_updates=" << c.sta_full_updates.load()
     << " sta_incremental_updates=" << c.sta_incremental_updates.load()
     << " sta_gates_retimed=" << c.sta_gates_retimed.load();
  return os.str();
}

}  // namespace rlmul::util
