#include "util/perf_counters.hpp"

#include <sstream>

namespace rlmul::util {

void PerfCounters::reset() {
  unique_evals = 0;
  cache_hits = 0;
  inflight_waits = 0;
  synth_calls = 0;
  netlists_built = 0;
  cpa_variants_built = 0;
  netlists_reused = 0;
  sta_full_updates = 0;
  sta_incremental_updates = 0;
  sta_gates_retimed = 0;
  nn_time_us = 0;
  gemm_time_us = 0;
  nn_flops = 0;
  eval_batches = 0;
  eval_batched_designs = 0;
  eval_batch_coalesce_wait_us = 0;
  dsdb_hits = 0;
  dsdb_misses = 0;
  dsdb_appends = 0;
  dsdb_flushes = 0;
  eval_delta_hits = 0;
  eval_delta_fallbacks = 0;
  eval_delta_fresh_gates = 0;
  eval_delta_total_gates = 0;
}

PerfCounters& perf_counters() {
  static PerfCounters counters;
  return counters;
}

std::string format_perf_counters() {
  const PerfCounters& c = perf_counters();
  std::ostringstream os;
  os << "unique_evals=" << c.unique_evals.load()
     << " cache_hits=" << c.cache_hits.load()
     << " inflight_waits=" << c.inflight_waits.load()
     << " synth_calls=" << c.synth_calls.load()
     << " netlists_built=" << c.netlists_built.load()
     << " cpa_variants_built=" << c.cpa_variants_built.load()
     << " netlists_reused=" << c.netlists_reused.load()
     << " sta_full_updates=" << c.sta_full_updates.load()
     << " sta_incremental_updates=" << c.sta_incremental_updates.load()
     << " sta_gates_retimed=" << c.sta_gates_retimed.load();
  const std::uint64_t gemm_us = c.gemm_time_us.load();
  const std::uint64_t flops = c.nn_flops.load();
  // Integer GFLOP/s so every value on the line stays a plain decimal
  // (the smoke test's parsing contract).
  const std::uint64_t gflops = gemm_us > 0 ? flops / (gemm_us * 1000) : 0;
  os << " nn_time_us=" << c.nn_time_us.load()
     << " gemm_time_us=" << gemm_us << " nn_flops=" << flops
     << " nn_gflops=" << gflops;
  const std::uint64_t batches = c.eval_batches.load();
  const std::uint64_t batched = c.eval_batched_designs.load();
  // Rounded integer average, same plain-decimal contract as above.
  const std::uint64_t avg = batches > 0 ? (batched + batches / 2) / batches : 0;
  os << " eval_batches=" << batches << " eval_batch_size_avg=" << avg
     << " eval_batch_coalesce_wait_us=" << c.eval_batch_coalesce_wait_us.load();
  os << " dsdb_hits=" << c.dsdb_hits.load()
     << " dsdb_misses=" << c.dsdb_misses.load()
     << " dsdb_appends=" << c.dsdb_appends.load()
     << " dsdb_flushes=" << c.dsdb_flushes.load();
  const std::uint64_t delta_fresh = c.eval_delta_fresh_gates.load();
  const std::uint64_t delta_total = c.eval_delta_total_gates.load();
  // Integer percent of patched regions that was actually rebuilt,
  // plain-decimal like the other derived values.
  const std::uint64_t cone_frac =
      delta_total > 0 ? delta_fresh * 100 / delta_total : 0;
  os << " eval_delta_hits=" << c.eval_delta_hits.load()
     << " eval_delta_fallbacks=" << c.eval_delta_fallbacks.load()
     << " eval_delta_cone_frac=" << cone_frac;
  return os.str();
}

}  // namespace rlmul::util
