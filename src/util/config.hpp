#pragma once
// Environment-variable configuration knobs shared by benches and
// examples. Reproduction runs can be scaled up (`RLMUL_STEPS=5000`) or
// shrunk to CI size (`RLMUL_QUICK=1`) without recompiling.

#include <string>

namespace rlmul::util {

/// Integer env var with a default; malformed values fall back to `def`.
long env_long(const std::string& name, long def);

/// Double env var with a default; malformed values fall back to `def`.
double env_double(const std::string& name, double def);

/// True when RLMUL_QUICK is set to a non-zero value.
bool quick_mode();

/// Scales a default workload size: quick mode divides by 8 (min 1).
long scaled(long def);

}  // namespace rlmul::util
