#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

namespace rlmul::util {

std::string ascii_scatter(const std::vector<PlotSeries>& series,
                          const PlotOptions& opts) {
  static const char kGlyphs[] = {'W', 'G', 'S', 'o', '*', '+', 'x', '#'};

  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -min_x;
  double min_y = min_x;
  double max_y = -min_x;
  bool any = false;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
      any = true;
    }
  }
  if (!any) return "(no points)\n";
  if (max_x <= min_x) max_x = min_x + 1.0;
  if (max_y <= min_y) max_y = min_y + 1.0;
  // A little margin so extreme points don't sit on the frame.
  const double mx = 0.02 * (max_x - min_x);
  const double my = 0.05 * (max_y - min_y);
  min_x -= mx;
  max_x += mx;
  min_y -= my;
  max_y += my;

  const int w = std::max(opts.width, 16);
  const int h = std::max(opts.height, 6);
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& [x, y] : series[si].points) {
      const int col = static_cast<int>(
          std::lround((x - min_x) / (max_x - min_x) * (w - 1)));
      const int row = static_cast<int>(
          std::lround((y - min_y) / (max_y - min_y) * (h - 1)));
      // Row 0 at the top = max y.
      grid[static_cast<std::size_t>(h - 1 - row)]
          [static_cast<std::size_t>(col)] = glyph;
    }
  }

  std::ostringstream os;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%10.4g +", max_y);
  os << buf << std::string(static_cast<std::size_t>(w), '-') << "+\n";
  for (int r = 0; r < h; ++r) {
    os << std::string(11, ' ') << '|' << grid[static_cast<std::size_t>(r)]
       << "|\n";
  }
  std::snprintf(buf, sizeof(buf), "%10.4g +", min_y);
  os << buf << std::string(static_cast<std::size_t>(w), '-') << "+\n";
  std::snprintf(buf, sizeof(buf), "%.4g", min_x);
  os << std::string(12, ' ') << buf;
  std::snprintf(buf, sizeof(buf), "%.4g", max_x);
  const std::string right = std::string(opts.x_label) + "  " + buf;
  const int pad = w - static_cast<int>(right.size()) -
                  static_cast<int>(std::strlen(buf));
  os << std::string(static_cast<std::size_t>(std::max(pad, 1)), ' ')
     << right << "\n";
  os << "  y: " << opts.y_label << "   legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << ' ' << kGlyphs[si % sizeof(kGlyphs)] << '=' << series[si].name;
  }
  os << "\n";
  return os.str();
}

}  // namespace rlmul::util
