#pragma once
// Build provenance for results files: one `key=value` line naming the
// compiler, the active sanitizers and whether the Clang thread-safety
// analysis was on, so a results/BENCH_*.json (or any RLMUL_COUNTERS
// log) records which build configuration produced it. Printed as
// `RLMUL_BUILD <line>` by the CLI and every bench binary.

#include <string>

namespace rlmul::util {

/// `compiler=gcc-12.2 sanitizers=address,undefined
///  thread_safety_analysis=off` — stable key order, plain tokens, no
/// spaces inside a value (the same parsing contract as RLMUL_COUNTERS).
std::string build_info();

}  // namespace rlmul::util
