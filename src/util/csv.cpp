#include "util/csv.hpp"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

namespace rlmul::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    const std::string& f = fields[i];
    if (f.find_first_of(",\"\n") != std::string::npos) {
      out_ << '"';
      for (char c : f) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << f;
    }
  }
  out_ << '\n';
}

std::string output_dir() {
  const char* env = std::getenv("RLMUL_OUT");
  std::string dir = env != nullptr && *env != '\0' ? env : "results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (dir.back() != '/') dir += '/';
  return dir;
}

}  // namespace rlmul::util
