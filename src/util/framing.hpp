#pragma once
// Length-prefixed frame codec for the rlmul serve protocol: every
// message on the wire is a 4-byte little-endian payload length followed
// by the payload bytes (one JSON document). The codec is pure byte
// shuffling — no sockets, no syscalls — so both sides of a connection
// and the tests share one implementation. Raw socket I/O lives in
// src/serve/socket.* (the lint confines it there).
//
// FrameParser is an incremental decoder: feed() appends whatever bytes
// arrived, next() extracts complete payloads in order. A frame whose
// declared length exceeds the limit throws immediately (before the
// payload arrives), so a malicious or corrupted peer cannot make the
// parser buffer unbounded garbage. Torn frames (connection died mid
// message) simply never complete.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rlmul::util {

/// Hard ceiling a FrameParser accepts by default; large enough for any
/// status/event payload, small enough to bound per-connection memory.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// Appends one frame (length prefix + payload) to `out`.
void append_frame(std::vector<std::uint8_t>& out, std::string_view payload);

/// Convenience: a single frame as a fresh buffer.
std::vector<std::uint8_t> encode_frame(std::string_view payload);

class FrameParser {
 public:
  explicit FrameParser(std::size_t max_frame = kDefaultMaxFrameBytes)
      : max_frame_(max_frame) {}

  /// Appends raw bytes from the wire.
  void feed(const void* data, std::size_t n);

  /// Extracts the next complete payload into `*payload`; false when
  /// more bytes are needed. Throws std::runtime_error on a frame whose
  /// declared length exceeds the limit (protocol violation — the
  /// caller should drop the connection; the parser is poisoned).
  bool next(std::string* payload);

  /// Bytes fed but not yet returned through next().
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace rlmul::util
