#include "util/config.hpp"

#include <cstdlib>

namespace rlmul::util {

long env_long(const std::string& name, long def) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return def;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw) return def;
  return value;
}

double env_double(const std::string& name, double def) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return def;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return def;
  return value;
}

bool quick_mode() { return env_long("RLMUL_QUICK", 0) != 0; }

long scaled(long def) {
  if (!quick_mode()) return def;
  const long reduced = def / 8;
  return reduced > 0 ? reduced : 1;
}

}  // namespace rlmul::util
