#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rlmul::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

BoxStats box_stats(const std::vector<double>& xs) {
  BoxStats b;
  if (xs.empty()) return b;
  b.min = *std::min_element(xs.begin(), xs.end());
  b.max = *std::max_element(xs.begin(), xs.end());
  b.q1 = quantile(xs, 0.25);
  b.median = quantile(xs, 0.5);
  b.q3 = quantile(xs, 0.75);
  return b;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace rlmul::util
