#include "prefix/prefix_graph.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace rlmul::prefix {

namespace {

Ref add_node(PrefixGraph& g, Ref left, Ref right) {
  Node n;
  n.hi = g.span_hi(left);
  n.lo = g.span_lo(right);
  n.left = left;
  n.right = right;
  g.nodes.push_back(n);
  return static_cast<Ref>(g.nodes.size()) - 1;
}

std::vector<Ref> leaves(int width) {
  std::vector<Ref> cur(static_cast<std::size_t>(width));
  for (int j = 0; j < width; ++j) cur[static_cast<std::size_t>(j)] = leaf(j);
  return cur;
}

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

bool valid(const PrefixGraph& g, std::string* why) {
  const auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (g.width < 1) return fail("width < 1");
  if (static_cast<int>(g.outputs.size()) != g.width) {
    return fail("outputs.size() != width");
  }
  const auto ref_ok = [&](Ref r, int before) {
    if (is_leaf(r)) return leaf_bit(r) >= 0 && leaf_bit(r) < g.width;
    return r >= 0 && r < before;
  };
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const Node& n = g.nodes[i];
    const std::string at = "node " + std::to_string(i);
    if (!ref_ok(n.left, static_cast<int>(i)) ||
        !ref_ok(n.right, static_cast<int>(i))) {
      return fail(at + ": parent out of range or not preceding");
    }
    if (n.hi != g.span_hi(n.left) || n.lo != g.span_lo(n.right)) {
      return fail(at + ": span does not match parents");
    }
    if (g.span_lo(n.left) != g.span_hi(n.right) + 1) {
      return fail(at + ": parent spans do not abut");
    }
    if (n.lo < 0 || n.hi >= g.width) return fail(at + ": span out of range");
  }
  for (int j = 0; j < g.width; ++j) {
    const Ref r = g.outputs[static_cast<std::size_t>(j)];
    if (!ref_ok(r, static_cast<int>(g.nodes.size()))) {
      return fail("output " + std::to_string(j) + ": ref out of range");
    }
    if (g.span_lo(r) != 0 || g.span_hi(r) != j) {
      return fail("output " + std::to_string(j) + ": does not cover [0.." +
                  std::to_string(j) + "]");
    }
  }
  return true;
}

std::vector<int> output_levels(const PrefixGraph& g) {
  std::vector<int> lvl(g.nodes.size(), 0);
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const Node& n = g.nodes[i];
    const int ll = is_leaf(n.left) ? 0 : lvl[static_cast<std::size_t>(n.left)];
    const int rl = is_leaf(n.right) ? 0 : lvl[static_cast<std::size_t>(n.right)];
    lvl[i] = std::max(ll, rl) + 1;
  }
  std::vector<int> out(g.outputs.size(), 0);
  for (std::size_t j = 0; j < g.outputs.size(); ++j) {
    const Ref r = g.outputs[j];
    out[j] = is_leaf(r) ? 0 : lvl[static_cast<std::size_t>(r)];
  }
  return out;
}

PrefixGraph serial(int width) {
  PrefixGraph g;
  g.width = width;
  std::vector<Ref> cur = leaves(width);
  for (int j = 1; j < width; ++j) {
    cur[static_cast<std::size_t>(j)] =
        add_node(g, leaf(j), cur[static_cast<std::size_t>(j - 1)]);
  }
  g.outputs = std::move(cur);
  return g;
}

PrefixGraph kogge_stone(int width) {
  PrefixGraph g;
  g.width = width;
  std::vector<Ref> cur = leaves(width);
  // All bits advance together: every level reads the previous level's
  // refs (the legacy emitter's double buffer), j descending.
  for (int d = 1; d < width; d *= 2) {
    std::vector<Ref> next = cur;
    for (int j = width - 1; j >= d; --j) {
      next[static_cast<std::size_t>(j)] =
          add_node(g, cur[static_cast<std::size_t>(j)],
                   cur[static_cast<std::size_t>(j - d)]);
    }
    cur = std::move(next);
  }
  g.outputs = std::move(cur);
  return g;
}

PrefixGraph sklansky(int width) {
  PrefixGraph g;
  g.width = width;
  std::vector<Ref> cur = leaves(width);
  for (int d = 1; d < width; d *= 2) {
    for (int j = 0; j < width; ++j) {
      if ((j & d) != 0) {
        cur[static_cast<std::size_t>(j)] =
            add_node(g, cur[static_cast<std::size_t>(j)],
                     cur[static_cast<std::size_t>((j / d) * d - 1)]);
      }
    }
  }
  g.outputs = std::move(cur);
  return g;
}

PrefixGraph brent_kung(int width) {
  PrefixGraph g;
  g.width = width;
  std::vector<Ref> cur = leaves(width);
  int top = 1;
  while (top < width) top *= 2;
  for (int d = 1; d < width; d *= 2) {
    for (int j = 2 * d - 1; j < width; j += 2 * d) {
      cur[static_cast<std::size_t>(j)] =
          add_node(g, cur[static_cast<std::size_t>(j)],
                   cur[static_cast<std::size_t>(j - d)]);
    }
  }
  for (int d = top / 2; d > 1; d /= 2) {
    for (int j = d + d / 2 - 1; j < width; j += d) {
      cur[static_cast<std::size_t>(j)] =
          add_node(g, cur[static_cast<std::size_t>(j)],
                   cur[static_cast<std::size_t>(j - d / 2)]);
    }
  }
  g.outputs = std::move(cur);
  return g;
}

bool is_serial(const PrefixGraph& g) {
  if (g.width < 1) return false;
  return canonicalize(g) == serial(g.width);
}

void Matrix::set(int row, int bit, bool on) {
  if (bit < 0 || bit >= width || row < 0) return;
  if (row >= rows) {
    if (!on) return;
    cells.resize(static_cast<std::size_t>(row + 1) *
                     static_cast<std::size_t>(width),
                 0);
    rows = row + 1;
  }
  cells[static_cast<std::size_t>(row) * static_cast<std::size_t>(width) +
        static_cast<std::size_t>(bit)] = on ? 1 : 0;
}

Matrix matrix_of(const PrefixGraph& g) {
  // Live = reachable from outputs; level = derived operator depth.
  std::vector<std::uint8_t> live(g.nodes.size(), 0);
  std::vector<Ref> stack;
  for (const Ref r : g.outputs) {
    if (!is_leaf(r)) stack.push_back(r);
  }
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    if (live[static_cast<std::size_t>(r)]) continue;
    live[static_cast<std::size_t>(r)] = 1;
    const Node& n = g.nodes[static_cast<std::size_t>(r)];
    if (!is_leaf(n.left)) stack.push_back(n.left);
    if (!is_leaf(n.right)) stack.push_back(n.right);
  }
  std::vector<int> lvl(g.nodes.size(), 0);
  Matrix m;
  m.width = g.width;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const Node& n = g.nodes[i];
    const int ll = is_leaf(n.left) ? 0 : lvl[static_cast<std::size_t>(n.left)];
    const int rl = is_leaf(n.right) ? 0 : lvl[static_cast<std::size_t>(n.right)];
    lvl[i] = std::max(ll, rl) + 1;
    if (live[i]) m.set(lvl[i] - 1, n.hi, true);
  }
  return m;
}

Legalized legalize(const Matrix& m) {
  const int w = m.width < 1 ? 1 : m.width;
  Legalized out;
  out.graph.width = w;
  out.matrix.width = w;
  PrefixGraph& g = out.graph;
  std::vector<Ref> cur = leaves(w);
  std::vector<int> survivors;
  for (int r = 0; r < m.rows; ++r) {
    // Previous rows' state: cells in one row join previous-level groups
    // (the Kogge-Stone reading discipline), so within-row order cannot
    // matter beyond node numbering.
    const std::vector<Ref> snap = cur;
    survivors.clear();
    for (int j = 1; j < w; ++j) {
      if (!m.at(r, j)) continue;
      const int lo = g.span_lo(snap[static_cast<std::size_t>(j)]);
      if (lo == 0) continue;  // group already complete: drop the cell
      cur[static_cast<std::size_t>(j)] =
          add_node(g, snap[static_cast<std::size_t>(j)],
                   snap[static_cast<std::size_t>(lo - 1)]);
      survivors.push_back(j);
    }
    if (!survivors.empty()) {
      const int orow = out.matrix.rows;
      for (const int j : survivors) out.matrix.set(orow, j, true);
    }
  }
  // Completion: serialize whatever is still missing, one operator per
  // row so a replay reconstructs the identical graph (idempotence).
  for (int j = 1; j < w; ++j) {
    const int lo = g.span_lo(cur[static_cast<std::size_t>(j)]);
    if (lo == 0) continue;
    cur[static_cast<std::size_t>(j)] =
        add_node(g, cur[static_cast<std::size_t>(j)],
                 cur[static_cast<std::size_t>(lo - 1)]);
    out.matrix.set(out.matrix.rows, j, true);
  }
  g.outputs = std::move(cur);
  return out;
}

PrefixGraph canonicalize(const PrefixGraph& g) {
  PrefixGraph out;
  out.width = g.width;
  constexpr Ref kUnset = -0x7fffffff;
  std::vector<Ref> memo(g.nodes.size(), kUnset);
  std::map<std::pair<Ref, Ref>, Ref> dedup;
  std::vector<Ref> stack;
  const auto resolve = [&](Ref root) -> Ref {
    if (is_leaf(root)) return root;
    stack.push_back(root);
    while (!stack.empty()) {
      const Ref i = stack.back();
      if (memo[static_cast<std::size_t>(i)] != kUnset) {
        stack.pop_back();
        continue;
      }
      const Node& n = g.nodes[static_cast<std::size_t>(i)];
      bool pending = false;
      if (!is_leaf(n.left) && memo[static_cast<std::size_t>(n.left)] == kUnset) {
        stack.push_back(n.left);
        pending = true;
      }
      if (!is_leaf(n.right) &&
          memo[static_cast<std::size_t>(n.right)] == kUnset) {
        stack.push_back(n.right);
        pending = true;
      }
      if (pending) continue;
      const Ref lc =
          is_leaf(n.left) ? n.left : memo[static_cast<std::size_t>(n.left)];
      const Ref rc =
          is_leaf(n.right) ? n.right : memo[static_cast<std::size_t>(n.right)];
      const auto key = std::make_pair(lc, rc);
      const auto it = dedup.find(key);
      Ref cid;
      if (it != dedup.end()) {
        cid = it->second;
      } else {
        cid = static_cast<Ref>(out.nodes.size());
        out.nodes.push_back(Node{n.hi, n.lo, lc, rc});
        dedup.emplace(key, cid);
      }
      memo[static_cast<std::size_t>(i)] = cid;
      stack.pop_back();
    }
    return memo[static_cast<std::size_t>(root)];
  };
  out.outputs.reserve(g.outputs.size());
  for (const Ref r : g.outputs) out.outputs.push_back(resolve(r));
  return out;
}

std::string canonical_key(const PrefixGraph& g) {
  const PrefixGraph c = canonicalize(g);
  std::string key = "w" + std::to_string(c.width) + ":";
  for (const Node& n : c.nodes) {
    key += "(" + std::to_string(n.left) + "," + std::to_string(n.right) + ")";
  }
  key += "|";
  for (std::size_t j = 0; j < c.outputs.size(); ++j) {
    if (j) key += ",";
    key += std::to_string(c.outputs[j]);
  }
  return key;
}

std::uint64_t canonical_hash(const PrefixGraph& g) {
  const std::string key = canonical_key(g);
  return fnv1a64(key.data(), key.size());
}

Matrix apply_move(Matrix m, const Move& mv) {
  const int w = m.width;
  const auto clamp_bit = [&](int b) { return std::clamp(b, 0, w - 1); };
  switch (mv.kind) {
    case MoveKind::kAddNode:
      m.set(std::max(mv.level, 0), mv.bit, true);
      break;
    case MoveKind::kRemoveNode:
      m.set(mv.level, mv.bit, false);
      break;
    case MoveKind::kSerializeSpan: {
      const int lo = clamp_bit(std::min(mv.lo, mv.hi));
      const int hi = clamp_bit(std::max(mv.lo, mv.hi));
      for (int r = 0; r < m.rows; ++r) {
        for (int j = lo; j <= hi; ++j) m.set(r, j, false);
      }
      break;
    }
    case MoveKind::kParallelizeSpan: {
      const int lo = clamp_bit(std::min(mv.lo, mv.hi));
      const int hi = clamp_bit(std::max(mv.lo, mv.hi));
      for (int r = 0; r < m.rows; ++r) {
        for (int j = lo; j <= hi; ++j) m.set(r, j, false);
      }
      int row = 0;
      for (int d = 1; d <= hi - lo; d *= 2, ++row) {
        for (int j = lo; j <= hi; ++j) {
          if (((j - lo) & d) != 0) m.set(row, j, true);
        }
      }
      break;
    }
  }
  return m;
}

GraphDelta diff_graphs(const PrefixGraph& a, const PrefixGraph& b) {
  GraphDelta d;
  d.identical = a == b;
  if (d.identical) return d;
  if (a.width != b.width) {
    const int w = std::max(a.width, b.width);
    for (int j = 0; j < w; ++j) d.changed_outputs.push_back(j);
    return d;
  }
  const Matrix ma = matrix_of(a);
  const Matrix mb = matrix_of(b);
  const int rows = std::max(ma.rows, mb.rows);
  for (int j = 0; j < a.width; ++j) {
    for (int r = 0; r < rows; ++r) {
      if (ma.at(r, j) != mb.at(r, j)) {
        d.changed_outputs.push_back(j);
        break;
      }
    }
  }
  return d;
}

}  // namespace rlmul::prefix
