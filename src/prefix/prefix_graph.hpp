#pragma once
// Parallel-prefix carry networks as first-class, searchable objects.
//
// A PrefixGraph is a DAG of (generate, propagate) operators over the
// adder's bit columns: each node joins a left span [mid+1..hi] with the
// exactly-abutting right span [lo..mid], and outputs[j] names the
// producer of the group over [0..j] that the sum XOR at bit j+1 reads.
// The four legacy CPA architectures (ripple / Brent-Kung / Sklansky /
// Kogge-Stone) are just four named points in this space; arbitrary
// points come from the PrefixRL-style bit matrix plus `legalize`, which
// repairs any matrix into a valid graph. `canonicalize` gives the
// order-independent structural form used for design-space keying.
//
// Node order is meaningful: it is the order netlist::build_cpa emits
// gates in, so the named constructors list their nodes in the exact
// loop order of the pre-refactor enum emitters and reproduce those
// netlists bit for bit (dead top-bit groups included).

#include <cstdint>
#include <string>
#include <vector>

namespace rlmul::prefix {

/// Producer of a (g, p) pair: values >= 0 index PrefixGraph::nodes;
/// negative values are level-0 column inputs, leaf(b) == -1 - b.
using Ref = int;

constexpr Ref leaf(int bit) { return -1 - bit; }
constexpr bool is_leaf(Ref r) { return r < 0; }
constexpr int leaf_bit(Ref r) { return -1 - r; }

/// One prefix-operator application over two abutting spans.
struct Node {
  int hi = 0;  ///< span is [lo..hi]
  int lo = 0;
  Ref left = 0;   ///< produces [mid+1..hi]
  Ref right = 0;  ///< produces [lo..mid]
  bool operator==(const Node&) const = default;
};

struct PrefixGraph {
  int width = 0;
  /// Topological *and* emission order: parents precede children, and
  /// netlist::build_cpa materializes node k's gates after nodes
  /// 0..k-1, so equal node lists mean gate-identical netlists.
  std::vector<Node> nodes;
  /// outputs[j] produces the group over [0..j]; outputs[0] == leaf(0).
  std::vector<Ref> outputs;

  int span_hi(Ref r) const {
    return is_leaf(r) ? leaf_bit(r) : nodes[static_cast<std::size_t>(r)].hi;
  }
  int span_lo(Ref r) const {
    return is_leaf(r) ? leaf_bit(r) : nodes[static_cast<std::size_t>(r)].lo;
  }
  bool operator==(const PrefixGraph&) const = default;
};

/// Structural validity: parents precede children, every node joins two
/// exactly-abutting spans, and outputs[j] covers [0..j] for every bit.
bool valid(const PrefixGraph& g, std::string* why = nullptr);

/// Structural diff between two prefix graphs, driving the delta
/// evaluator: `identical` (equal node/output lists, hence — per the
/// emission-order contract above — gate-identical netlists) is the
/// precondition for copying a parent's pinned-CPA region wholesale.
struct GraphDelta {
  bool identical = false;
  /// Output bits whose canonical occupancy-matrix row differs (all bits
  /// when the widths differ). Diagnostic / cone statistics only.
  std::vector<int> changed_outputs;
};

GraphDelta diff_graphs(const PrefixGraph& a, const PrefixGraph& b);

/// Operator depth feeding outputs[j] (0 where the output is a leaf).
/// The RL env's prefix state channel encodes this level map.
std::vector<int> output_levels(const PrefixGraph& g);

// -- named constructors ------------------------------------------------------
// Node lists mirror the legacy enum emitters in netlist/ct_builder.cpp
// loop for loop, so emission through build_cpa reproduces the exact
// pre-refactor netlists for these four points.

PrefixGraph serial(int width);  ///< ripple: [0..j] = leaf(j) o [0..j-1]
PrefixGraph kogge_stone(int width);
PrefixGraph sklansky(int width);
PrefixGraph brent_kung(int width);

/// True iff the graph is structurally the serial chain — the netlist
/// emitter lowers such graphs through the HA/FA ripple chain instead
/// of discrete prefix gates, exactly as CpaKind::kRippleCarry did.
bool is_serial(const PrefixGraph& g);

// -- matrix form and legalization -------------------------------------------

/// PrefixRL-style occupancy matrix: cell (row, bit) requests a prefix
/// operator at that bit, rows processed in order. This is the move and
/// action representation; `legalize` turns any matrix into a graph.
struct Matrix {
  int width = 0;
  int rows = 0;
  std::vector<std::uint8_t> cells;  ///< [row * width + bit]

  bool at(int row, int bit) const {
    return row >= 0 && row < rows && bit >= 0 && bit < width &&
           cells[static_cast<std::size_t>(row) * static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(bit)] != 0;
  }
  /// Grows rows as needed on set; clearing outside the matrix is a
  /// no-op.
  void set(int row, int bit, bool on);
  bool operator==(const Matrix&) const = default;
};

/// Projects `g` onto the matrix form: one cell per live operator at
/// (derived level - 1, hi). Lossy for arbitrary graphs — re-levelling
/// merges rows and operators sharing (level, hi) collide — so
/// legalize(matrix_of(g)) is only guaranteed canonically equal to `g`
/// for named constructors (see legalize below). Repeated legalize ∘
/// matrix_of round trips converge to a canonical fixed point within a
/// few iterations (completion operators can re-level once more on the
/// next trip, so one trip is not always enough) — the no-oscillation
/// property the move-application paths (rl::MultiplierEnv::step,
/// search::SaMethod) rely on, enforced by fuzz_prefix_legalize.
Matrix matrix_of(const PrefixGraph& g);

struct Legalized {
  /// Repaired fixed point: legalize(matrix).matrix == matrix. Dropped
  /// cells (operators over already-complete groups) are cleared, empty
  /// rows compacted, and completion operators appended one per row.
  Matrix matrix;
  PrefixGraph graph;  ///< valid graph, nodes in repair order
};

/// Repairs an arbitrary bit matrix into a valid prefix graph. Each row
/// is processed against the previous rows' state (cells joining with
/// the group at span_lo - 1); cells over complete groups are dropped;
/// a completion pass serializes whatever is still missing. Idempotent
/// on the repaired matrix, and legalize(matrix_of(C)) is canonically
/// equal to C for every named constructor.
Legalized legalize(const Matrix& m);

// -- canonicalization --------------------------------------------------------

/// Order-independent structural form: prunes operators unreachable
/// from the outputs, deduplicates structurally-identical ones, and
/// renumbers by a deterministic traversal of the outputs. Two graphs
/// computing the same groups through the same operator tree compare
/// equal after canonicalization regardless of node order.
PrefixGraph canonicalize(const PrefixGraph& g);

/// Serialization of the canonical form (design-space database key).
std::string canonical_key(const PrefixGraph& g);

/// FNV-1a of canonical_key, for compact keys in CSV/stats output.
std::uint64_t canonical_hash(const PrefixGraph& g);

// -- local rewrite moves ----------------------------------------------------

enum class MoveKind {
  kAddNode,          ///< set matrix cell (level, bit)
  kRemoveNode,       ///< clear matrix cell (level, bit)
  kSerializeSpan,    ///< clear columns [lo..hi]: completion re-chains them
  kParallelizeSpan,  ///< Sklansky pattern over columns [lo..hi]
};

struct Move {
  MoveKind kind = MoveKind::kAddNode;
  int level = 0;  ///< kAddNode/kRemoveNode row
  int bit = 0;    ///< kAddNode/kRemoveNode column
  int lo = 0;     ///< span moves: [lo..hi]
  int hi = 0;
};

/// Applies the move in matrix form; callers re-legalize the result.
/// Out-of-range coordinates clamp to no-ops rather than throwing, so
/// random move streams stay total.
Matrix apply_move(Matrix m, const Move& mv);

}  // namespace rlmul::prefix
