// AVX2+FMA GEMM tile. This translation unit is compiled with
// -mavx2 -mfma (see src/nt/CMakeLists.txt); the only symbol it exports
// is a table of function pointers with a constant initializer, so
// nothing here executes unless gemm.cpp's runtime CPU check passes.
//
// The full-tile micro-kernel is written with explicit intrinsics and
// twelve *named* __m256 accumulators: left as a float[96] array the
// compiler keeps the accumulators in memory and the loop becomes
// store-to-load-forwarding bound (~9x slower than the portable tile).
// Edge tiles (mr < 6 or nr < 16) fall back to the generic template
// body — same per-element summation order, just slower, and they only
// cover the matrix fringe.

#include "nt/gemm_tile.hpp"

#if defined(__x86_64__) && defined(__GNUC__)

#include <immintrin.h>

namespace rlmul::nt::detail {
namespace {

using Generic = TileKernels<6, 16>;

/// C[6 rows x 16 cols] += tile * panel, accumulators pinned in ymm.
/// 12 independent FMA chains hide the FMA latency at 2 issues/cycle.
inline void micro_6x16(int kc, const float* __restrict pa,
                       const float* __restrict pb, float* c0, float* c1,
                       float* c2, float* c3, float* c4, float* c5) {
  __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
  __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
  __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
  __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
  __m256 a40 = _mm256_setzero_ps(), a41 = _mm256_setzero_ps();
  __m256 a50 = _mm256_setzero_ps(), a51 = _mm256_setzero_ps();
  for (int kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(pb);
    const __m256 b1 = _mm256_loadu_ps(pb + 8);
    pb += 16;
    __m256 av;
    av = _mm256_broadcast_ss(pa + 0);
    a00 = _mm256_fmadd_ps(av, b0, a00);
    a01 = _mm256_fmadd_ps(av, b1, a01);
    av = _mm256_broadcast_ss(pa + 1);
    a10 = _mm256_fmadd_ps(av, b0, a10);
    a11 = _mm256_fmadd_ps(av, b1, a11);
    av = _mm256_broadcast_ss(pa + 2);
    a20 = _mm256_fmadd_ps(av, b0, a20);
    a21 = _mm256_fmadd_ps(av, b1, a21);
    av = _mm256_broadcast_ss(pa + 3);
    a30 = _mm256_fmadd_ps(av, b0, a30);
    a31 = _mm256_fmadd_ps(av, b1, a31);
    av = _mm256_broadcast_ss(pa + 4);
    a40 = _mm256_fmadd_ps(av, b0, a40);
    a41 = _mm256_fmadd_ps(av, b1, a41);
    av = _mm256_broadcast_ss(pa + 5);
    a50 = _mm256_fmadd_ps(av, b0, a50);
    a51 = _mm256_fmadd_ps(av, b1, a51);
    pa += 6;
  }
  _mm256_storeu_ps(c0, _mm256_add_ps(_mm256_loadu_ps(c0), a00));
  _mm256_storeu_ps(c0 + 8, _mm256_add_ps(_mm256_loadu_ps(c0 + 8), a01));
  _mm256_storeu_ps(c1, _mm256_add_ps(_mm256_loadu_ps(c1), a10));
  _mm256_storeu_ps(c1 + 8, _mm256_add_ps(_mm256_loadu_ps(c1 + 8), a11));
  _mm256_storeu_ps(c2, _mm256_add_ps(_mm256_loadu_ps(c2), a20));
  _mm256_storeu_ps(c2 + 8, _mm256_add_ps(_mm256_loadu_ps(c2 + 8), a21));
  _mm256_storeu_ps(c3, _mm256_add_ps(_mm256_loadu_ps(c3), a30));
  _mm256_storeu_ps(c3 + 8, _mm256_add_ps(_mm256_loadu_ps(c3 + 8), a31));
  _mm256_storeu_ps(c4, _mm256_add_ps(_mm256_loadu_ps(c4), a40));
  _mm256_storeu_ps(c4 + 8, _mm256_add_ps(_mm256_loadu_ps(c4 + 8), a41));
  _mm256_storeu_ps(c5, _mm256_add_ps(_mm256_loadu_ps(c5), a50));
  _mm256_storeu_ps(c5 + 8, _mm256_add_ps(_mm256_loadu_ps(c5 + 8), a51));
}

void compute_block_avx2(int m0, int mc, int kc, int n0, int nc,
                        const float* pa, const float* pb, float* c, int ldc) {
  for (int jr = 0; jr < nc; jr += 16) {
    const float* panel = pb + static_cast<std::size_t>(jr / 16) * kc * 16;
    const int nr = nc - jr < 16 ? nc - jr : 16;
    for (int ir = 0; ir < mc; ir += 6) {
      const int mr = mc - ir < 6 ? mc - ir : 6;
      const float* tile = pa + static_cast<std::size_t>(ir / 6) * 6 * kc;
      float* crow = c + static_cast<std::size_t>(m0 + ir) * ldc + n0 + jr;
      if (mr == 6 && nr == 16) {
        micro_6x16(kc, tile, panel, crow, crow + ldc, crow + 2 * ldc,
                   crow + 3 * ldc, crow + 4 * ldc, crow + 5 * ldc);
      } else {
        // Edge tile: the packed panels are zero-padded to the full
        // 6x16 shape, so run the same fast kernel into a scratch tile
        // and add only the live mr x nr corner into C. Keeping edge
        // tiles on the FMA path matters: MC need not divide 6, so a
        // scalar fallback here would run on every row-block tail.
        alignas(32) float acc[6 * 16] = {0.0f};
        micro_6x16(kc, tile, panel, acc, acc + 16, acc + 32, acc + 48,
                   acc + 64, acc + 80);
        for (int r = 0; r < mr; ++r) {
          const float* accrow = acc + r * 16;
          float* cr = crow + static_cast<std::size_t>(r) * ldc;
          for (int q = 0; q < nr; ++q) cr[q] += accrow[q];
        }
      }
    }
  }
}

}  // namespace

const GemmKernels kAvx2Kernels = {6, 16, &Generic::pack_a, &Generic::pack_b,
                                  &compute_block_avx2};

}  // namespace rlmul::nt::detail

#endif
