#pragma once
// SGEMM kernel layer for the neural-network library. One entry point
// (`sgemm`, a strided-batched C (+)= op(A)·op(B) with a fused bias
// epilogue) backs Conv2d, Linear and their backward passes; two
// implementations sit behind it:
//
//  * kBlocked — cache-blocked, panel-packed kernels with a fixed
//    MR x NR register micro-tile, parallelized over row-block tasks on
//    util::ThreadPool::shared(). The block schedule depends only on
//    the problem shape, never on the thread count, and every C element
//    has exactly one writer, so results are bit-identical at any
//    parallelism level (enforced by tests/test_gemm.cpp).
//  * kNaive — the reference loops the layers historically ran
//    (dot-product order for A·Bᵀ, saxpy order for the backward
//    variants). Selected with RLMUL_GEMM=naive, mirroring
//    RLMUL_FASTPATH for the synthesis pipeline; the tests use it as
//    the oracle the blocked kernels are checked against.
//
// The two modes legitimately differ in float rounding (blocked
// accumulation reorders sums), so checkpoint replays are bit-exact
// only within a fixed mode — see docs/architecture.md.

#include <cstddef>
#include <cstdint>

namespace rlmul::nt {

enum class GemmMode { kBlocked, kNaive };

/// Active implementation. Initialized from the RLMUL_GEMM environment
/// variable ("naive" or "0" selects the reference loops; anything
/// else, or unset, the blocked kernels).
GemmMode gemm_mode();
void set_gemm_mode(GemmMode mode);

/// Caps the number of concurrent tasks the blocked path fans out
/// (0 = derive from util::ThreadPool::shared(); 1 = run inline).
/// Results are independent of this setting by construction.
int gemm_max_threads();
void set_gemm_max_threads(int n);

enum class BiasKind {
  kNone,    ///< initialize C to zero (when not accumulating)
  kPerRow,  ///< C[i,:] starts from bias[i]  (conv: one bias per out channel)
  kPerCol,  ///< C[:,j] starts from bias[j]  (linear: one bias per out feature)
};

/// Strided-batched SGEMM. For each item g in [0, batch):
///
///   C_g = (accumulate ? C_g : bias) + op(A_g) · op(B_g)
///
/// where op(A) is the logical [m x k] operand (stored [k x m] with
/// leading dimension `lda` when `trans_a`), op(B) is [k x n] (stored
/// [n x k] with `ldb` when `trans_b`), and X_g = X + g * stride_X.
/// A zero stride shares the operand across the batch; `stride_c == 0`
/// with `batch > 1` additionally means the per-item products are
/// *summed* into one C (in batch order — the reduction is sequential
/// per row block, keeping results thread-count independent).
/// `bias` must be null iff `bias_kind == kNone`, and bias requires
/// `accumulate == false`. trans_a && trans_b is unsupported (no caller
/// needs it).
void sgemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
           int lda, std::ptrdiff_t stride_a, const float* b, int ldb,
           std::ptrdiff_t stride_b, float* c, int ldc, std::ptrdiff_t stride_c,
           int batch, bool accumulate, const float* bias, BiasKind bias_kind);

}  // namespace rlmul::nt
