#include "nt/tensor.hpp"

#include <cmath>
#include <stdexcept>

namespace rlmul::nt {

namespace {
std::size_t count(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(count(shape_), 0.0f) {}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.next_gaussian()) * stddev;
  }
  return t;
}

float& Tensor::at(int i, int j) {
  return data_[static_cast<std::size_t>(i) *
                   static_cast<std::size_t>(shape_[1]) +
               static_cast<std::size_t>(j)];
}
float Tensor::at(int i, int j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(int i, int j, int k) {
  return data_[(static_cast<std::size_t>(i) *
                    static_cast<std::size_t>(shape_[1]) +
                static_cast<std::size_t>(j)) *
                   static_cast<std::size_t>(shape_[2]) +
               static_cast<std::size_t>(k)];
}
float Tensor::at(int i, int j, int k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

float& Tensor::at(int i, int j, int k, int l) {
  return data_[((static_cast<std::size_t>(i) *
                     static_cast<std::size_t>(shape_[1]) +
                 static_cast<std::size_t>(j)) *
                    static_cast<std::size_t>(shape_[2]) +
                static_cast<std::size_t>(k)) *
                   static_cast<std::size_t>(shape_[3]) +
               static_cast<std::size_t>(l)];
}
float Tensor::at(int i, int j, int k, int l) const {
  return const_cast<Tensor*>(this)->at(i, j, k, l);
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
  if (count(shape) != numel()) {
    throw std::invalid_argument("reshaped: element count mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  for (float& v : data_) v = value;
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  if (other.numel() != numel()) {
    throw std::invalid_argument("add_scaled: size mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Tensor::scale(float factor) {
  for (float& v : data_) v *= factor;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::abs_max() const {
  double m = 0.0;
  for (float v : data_) m = std::max(m, static_cast<double>(std::fabs(v)));
  return m;
}

bool same_shape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace rlmul::nt
