#include "nt/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "nt/arena.hpp"
#include "nt/gemm_tile.hpp"
#include "util/config.hpp"
#include "util/perf_counters.hpp"
#include "util/thread_pool.hpp"

// Concurrency model (no mutex, nothing for RLMUL_GUARDED_BY): the
// parallel schedule partitions C into disjoint row blocks, one pool
// task per block, so no two tasks ever write the same element; shared
// configuration (mode/max-threads flags) is read through relaxed
// atomics; pack buffers come from thread_local arenas so tasks never
// share scratch. The tsan-labeled test_gemm suite checks
// thread-invariance of the results.
namespace rlmul::nt {
namespace {

// Cache blocking (the register micro-tile lives in gemm_tile.hpp and
// is chosen at runtime). KC keeps one packed A row-panel plus the
// streamed B column panel L1/L2 resident; MC bounds a row-block task
// so the packed A block stays in L2; NC is the task granularity along
// the columns and must be a multiple of every tile's NR so shared
// packed panels can be sub-ranged per task.
constexpr int MC = 64;
constexpr int KC = 256;
constexpr int NC = 128;
static_assert(NC % 8 == 0 && NC % 16 == 0);

int round_to(int v, int q) { return (v + q - 1) / q * q; }

// Portable tile: 4x8 = 32 accumulators fit the baseline (non
// -march=native) SSE register file.
const detail::GemmKernels kBaseKernels = detail::TileKernels<4, 8>::kernels();

const detail::GemmKernels* pick_kernels() {
  // RLMUL_GEMM_TILE=portable pins the baseline tile (useful to compare
  // tile codegen or to sidestep a bad dispatch on exotic hardware);
  // anything else auto-detects.
  const char* raw = std::getenv("RLMUL_GEMM_TILE");
  if (raw != nullptr && std::string(raw) == "portable") return &kBaseKernels;
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &detail::kAvx2Kernels;
  }
#endif
  return &kBaseKernels;
}

const detail::GemmKernels* active_kernels() {
  static const detail::GemmKernels* chosen = pick_kernels();
  return chosen;
}

GemmMode mode_from_env() {
  const char* raw = std::getenv("RLMUL_GEMM");
  if (raw == nullptr) return GemmMode::kBlocked;
  const std::string v(raw);
  return (v == "naive" || v == "0") ? GemmMode::kNaive : GemmMode::kBlocked;
}

std::atomic<GemmMode>& mode_flag() {
  static std::atomic<GemmMode> mode{mode_from_env()};
  return mode;
}

std::atomic<int>& max_threads_flag() {
  static std::atomic<int> n{
      static_cast<int>(util::env_long("RLMUL_GEMM_THREADS", 0))};
  return n;
}

// Two thread-local arenas so a caller can pre-pack shared operands in
// one while the row-block tasks it runs inline reset the other.
ScratchArena& prepack_arena() {
  static thread_local ScratchArena arena;
  return arena;
}
ScratchArena& task_arena() {
  static thread_local ScratchArena arena;
  return arena;
}

// -- naive reference kernels -------------------------------------------------
// Loop structures mirror the layers' historical inner loops: dot-
// product order for A·Bᵀ (the forward passes) and g-broadcast saxpy
// order for the backward variants, so RLMUL_GEMM=naive reproduces the
// legacy per-element summation order exactly.

void naive_item(bool trans_a, bool trans_b, int m, int n, int k,
                const float* a, int lda, const float* b, int ldb, float* c,
                int ldc) {
  if (!trans_a && trans_b) {
    for (int i = 0; i < m; ++i) {
      const float* ar = a + static_cast<std::size_t>(i) * lda;
      float* cr = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        const float* br = b + static_cast<std::size_t>(j) * ldb;
        float acc = cr[j];
        for (int p = 0; p < k; ++p) acc += ar[p] * br[p];
        cr[j] = acc;
      }
    }
  } else if (!trans_a && !trans_b) {
    for (int i = 0; i < m; ++i) {
      const float* ar = a + static_cast<std::size_t>(i) * lda;
      float* cr = c + static_cast<std::size_t>(i) * ldc;
      for (int p = 0; p < k; ++p) {
        const float g = ar[p];
        const float* br = b + static_cast<std::size_t>(p) * ldb;
        for (int j = 0; j < n; ++j) cr[j] += g * br[j];
      }
    }
  } else {  // trans_a && !trans_b
    for (int p = 0; p < k; ++p) {
      const float* ar = a + static_cast<std::size_t>(p) * lda;
      const float* br = b + static_cast<std::size_t>(p) * ldb;
      for (int i = 0; i < m; ++i) {
        const float g = ar[i];
        float* cr = c + static_cast<std::size_t>(i) * ldc;
        for (int j = 0; j < n; ++j) cr[j] += g * br[j];
      }
    }
  }
}

// -- blocked path ------------------------------------------------------------

struct BlockedJob {
  bool trans_a, trans_b;
  int m, n, k;
  const float* a;
  int lda;
  std::ptrdiff_t stride_a;
  const float* b;
  int ldb;
  std::ptrdiff_t stride_b;
  float* c;
  int ldc;
  std::ptrdiff_t stride_c;
  int batch;
  int mblocks, kblocks, nblocks;
  const detail::GemmKernels* ker;
  // Shared pre-packed operands (set when the operand is batch-
  // invariant); offsets index (mb, kb) blocks / kb blocks.
  const float* packed_a = nullptr;
  const float* packed_b = nullptr;
  std::vector<std::size_t> off_a;
  std::vector<std::size_t> off_b;
};

/// One C-tile task: rows [mb*MC, ...), columns [nb*NC, ...). Each C
/// element has exactly one writer across the whole task grid. When
/// stride_c == 0 the batch dimension is a reduction: this task walks
/// every item in order, so the summation order per C element is fixed
/// no matter how tasks map to threads.
void run_block_task(const BlockedJob& j, int item_task, int mb, int nb) {
  const detail::GemmKernels& ker = *j.ker;
  const int m0 = mb * MC;
  const int mc = std::min(MC, j.m - m0);
  const int n0 = nb * NC;
  const int nc = std::min(NC, j.n - n0);
  const int g_lo = j.stride_c == 0 ? 0 : item_task;
  const int g_hi = j.stride_c == 0 ? j.batch : item_task + 1;

  ScratchArena& arena = task_arena();
  arena.reset();
  float* local_a = nullptr;
  float* local_b = nullptr;
  if (j.packed_a == nullptr) {
    local_a = arena.alloc(static_cast<std::size_t>(round_to(mc, ker.mr)) *
                          std::min(KC, j.k));
  }
  if (j.packed_b == nullptr) {
    local_b = arena.alloc(static_cast<std::size_t>(std::min(KC, j.k)) *
                          round_to(nc, ker.nr));
  }

  for (int g = g_lo; g < g_hi; ++g) {
    const float* a = j.a + static_cast<std::ptrdiff_t>(g) * j.stride_a;
    const float* b = j.b + static_cast<std::ptrdiff_t>(g) * j.stride_b;
    float* c = j.c + (j.stride_c == 0 ? 0
                                      : static_cast<std::ptrdiff_t>(g) *
                                            j.stride_c);
    for (int kb = 0; kb < j.kblocks; ++kb) {
      const int k0 = kb * KC;
      const int kc = std::min(KC, j.k - k0);
      const float* pa;
      if (j.packed_a != nullptr) {
        pa = j.packed_a + j.off_a[static_cast<std::size_t>(mb) * j.kblocks +
                                  kb];
      } else {
        ker.pack_a(j.trans_a, a, j.lda, m0, mc, k0, kc, local_a);
        pa = local_a;
      }
      if (j.packed_b != nullptr) {
        // Shared panels are NR-column slabs; n0 is a multiple of NR,
        // so the task's sub-range starts at panel n0/NR.
        const float* pb = j.packed_b + j.off_b[kb] +
                          static_cast<std::size_t>(n0 / ker.nr) * kc * ker.nr;
        ker.compute_block(m0, mc, kc, n0, nc, pa, pb, c, j.ldc);
      } else {
        ker.pack_b(j.trans_b, b, j.ldb, k0, kc, n0, nc, local_b);
        ker.compute_block(m0, mc, kc, n0, nc, pa, local_b, c, j.ldc);
      }
    }
  }
}

void run_blocked(const BlockedJob& job) {
  const int items = job.stride_c == 0 ? 1 : job.batch;
  const long tiles = static_cast<long>(job.mblocks) * job.nblocks;
  const long total = static_cast<long>(items) * tiles;
  const int cap_override = max_threads_flag().load(std::memory_order_relaxed);
  // The caller participates alongside the pool workers; the schedule
  // below only changes which thread runs a task, never what it does.
  const long capacity =
      cap_override > 0 ? cap_override : util::ThreadPool::shared().size() + 1;
  // Keep at least ~4 MFLOP per thread: below that, pool dispatch and
  // future-wait latency dwarf the compute (small inference GEMMs were
  // measurably slower through the pool than run inline). The cap
  // depends only on the problem shape, so determinism is unaffected.
  const double flops = 2.0 * job.m * job.n * job.k * job.batch;
  const long work_cap = static_cast<long>(flops / (4 << 20)) + 1;
  const long threads = std::min(std::min<long>(capacity, total), work_cap);

  auto run_range = [&job, tiles](long lo, long hi) {
    for (long t = lo; t < hi; ++t) {
      const long tile = t % tiles;
      run_block_task(job, static_cast<int>(t / tiles),
                     static_cast<int>(tile / job.nblocks),
                     static_cast<int>(tile % job.nblocks));
    }
  };
  if (threads <= 1) {
    run_range(0, total);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(threads) - 1);
  const long chunk = (total + threads - 1) / threads;
  for (long lo = chunk; lo < total; lo += chunk) {
    const long hi = std::min(lo + chunk, total);
    futures.push_back(util::ThreadPool::shared().submit(
        [&run_range, lo, hi]() { run_range(lo, hi); }));
  }
  run_range(0, chunk);
  for (auto& f : futures) f.get();
}

}  // namespace

GemmMode gemm_mode() { return mode_flag().load(std::memory_order_relaxed); }
void set_gemm_mode(GemmMode mode) {
  mode_flag().store(mode, std::memory_order_relaxed);
}

int gemm_max_threads() {
  return max_threads_flag().load(std::memory_order_relaxed);
}
void set_gemm_max_threads(int n) {
  max_threads_flag().store(n, std::memory_order_relaxed);
}

void sgemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
           int lda, std::ptrdiff_t stride_a, const float* b, int ldb,
           std::ptrdiff_t stride_b, float* c, int ldc, std::ptrdiff_t stride_c,
           int batch, bool accumulate, const float* bias, BiasKind bias_kind) {
  if (trans_a && trans_b) {
    throw std::invalid_argument("sgemm: trans_a && trans_b unsupported");
  }
  if ((bias == nullptr) != (bias_kind == BiasKind::kNone)) {
    throw std::invalid_argument("sgemm: bias/bias_kind mismatch");
  }
  if (accumulate && bias_kind != BiasKind::kNone) {
    throw std::invalid_argument("sgemm: bias requires accumulate=false");
  }
  if (m <= 0 || n <= 0 || batch <= 0) return;
  const auto t0 = std::chrono::steady_clock::now();

  // Epilogue first: C starts from the bias (or zero, or its current
  // contents when accumulating); every kernel below purely adds.
  if (!accumulate) {
    const int copies = stride_c == 0 ? 1 : batch;
    for (int g = 0; g < copies; ++g) {
      float* cg = c + static_cast<std::ptrdiff_t>(g) * stride_c;
      for (int i = 0; i < m; ++i) {
        float* row = cg + static_cast<std::size_t>(i) * ldc;
        switch (bias_kind) {
          case BiasKind::kNone:
            std::memset(row, 0, static_cast<std::size_t>(n) * sizeof(float));
            break;
          case BiasKind::kPerRow:
            std::fill(row, row + n, bias[i]);
            break;
          case BiasKind::kPerCol:
            std::memcpy(row, bias, static_cast<std::size_t>(n) * sizeof(float));
            break;
        }
      }
    }
  }

  if (k > 0) {
    if (gemm_mode() == GemmMode::kNaive) {
      for (int g = 0; g < batch; ++g) {
        naive_item(trans_a, trans_b, m, n, k,
                   a + static_cast<std::ptrdiff_t>(g) * stride_a, lda,
                   b + static_cast<std::ptrdiff_t>(g) * stride_b, ldb,
                   c + (stride_c == 0
                            ? 0
                            : static_cast<std::ptrdiff_t>(g) * stride_c),
                   ldc);
      }
    } else {
      const detail::GemmKernels* ker = active_kernels();
      BlockedJob job{trans_a, trans_b, m,   n,        k,     a,
                     lda,     stride_a, b,  ldb,      stride_b, c,
                     ldc,     stride_c, batch,
                     (m + MC - 1) / MC, (k + KC - 1) / KC,
                     (n + NC - 1) / NC, ker};
      // Batch-invariant operands are packed once, up front, on the
      // calling thread; per-item operands are packed inside each task.
      ScratchArena& arena = prepack_arena();
      arena.reset();
      if (stride_a == 0 || batch == 1) {
        job.off_a.resize(static_cast<std::size_t>(job.mblocks) * job.kblocks);
        std::size_t total = 0;
        for (int mb = 0; mb < job.mblocks; ++mb) {
          const int mc = std::min(MC, m - mb * MC);
          for (int kb = 0; kb < job.kblocks; ++kb) {
            const int kc = std::min(KC, k - kb * KC);
            job.off_a[static_cast<std::size_t>(mb) * job.kblocks + kb] = total;
            total += static_cast<std::size_t>(round_to(mc, ker->mr)) * kc;
          }
        }
        float* pa = arena.alloc(total);
        for (int mb = 0; mb < job.mblocks; ++mb) {
          const int mc = std::min(MC, m - mb * MC);
          for (int kb = 0; kb < job.kblocks; ++kb) {
            const int kc = std::min(KC, k - kb * KC);
            ker->pack_a(trans_a, a, lda, mb * MC, mc, kb * KC, kc,
                        pa + job.off_a[static_cast<std::size_t>(mb) *
                                           job.kblocks +
                                       kb]);
          }
        }
        job.packed_a = pa;
      }
      if (stride_b == 0 || batch == 1) {
        job.off_b.resize(static_cast<std::size_t>(job.kblocks));
        std::size_t total = 0;
        for (int kb = 0; kb < job.kblocks; ++kb) {
          const int kc = std::min(KC, k - kb * KC);
          job.off_b[static_cast<std::size_t>(kb)] = total;
          total += static_cast<std::size_t>(kc) * round_to(n, ker->nr);
        }
        float* pb = arena.alloc(total);
        for (int kb = 0; kb < job.kblocks; ++kb) {
          const int kc = std::min(KC, k - kb * KC);
          ker->pack_b(trans_b, b, ldb, kb * KC, kc, 0, n,
                      pb + job.off_b[static_cast<std::size_t>(kb)]);
        }
        job.packed_b = pb;
      }
      run_blocked(job);
    }
  }

  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  auto& counters = util::perf_counters();
  counters.gemm_time_us.fetch_add(static_cast<std::uint64_t>(us),
                                  std::memory_order_relaxed);
  counters.nn_flops.fetch_add(2ull * static_cast<std::uint64_t>(m) *
                                  static_cast<std::uint64_t>(n) *
                                  static_cast<std::uint64_t>(k) *
                                  static_cast<std::uint64_t>(batch),
                              std::memory_order_relaxed);
}

}  // namespace rlmul::nt
