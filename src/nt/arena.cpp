#include "nt/arena.hpp"

#include <algorithm>

namespace rlmul::nt {

namespace {
// 64 bytes = 16 floats: slices never straddle a cache line boundary
// shared with the next slice.
constexpr std::size_t kAlign = 16;

std::size_t round_up(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }
}  // namespace

float* ScratchArena::alloc(std::size_t n) {
  n = round_up(std::max<std::size_t>(n, 1));
  frame_used_ += n;
  high_water_ = std::max(high_water_, frame_used_);
  if (!chunks_.empty()) {
    Chunk& last = chunks_.back();
    if (last.used + n <= last.data.size()) {
      float* out = last.data.data() + last.used;
      last.used += n;
      return out;
    }
  }
  // Overflow: open a fresh chunk (previously returned slices must stay
  // put). Doubling keeps the chunk count logarithmic while the first
  // frames discover the working-set size.
  std::size_t cap = std::max<std::size_t>(n, 1024);
  for (const Chunk& c : chunks_) cap = std::max(cap, 2 * c.data.size());
  chunks_.emplace_back();
  chunks_.back().data.resize(cap);
  chunks_.back().used = n;
  return chunks_.back().data.data();
}

void ScratchArena::reset() {
  if (chunks_.size() > 1 ||
      (chunks_.size() == 1 && chunks_.front().data.size() < high_water_)) {
    // Coalesce to one chunk covering the high-water mark; safe here
    // because reset() invalidates every outstanding slice.
    chunks_.clear();
    chunks_.emplace_back();
    chunks_.back().data.resize(round_up(high_water_));
  }
  for (Chunk& c : chunks_) c.used = 0;
  frame_used_ = 0;
}

}  // namespace rlmul::nt
