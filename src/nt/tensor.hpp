#pragma once
// Minimal dense float tensor used by the neural-network library: a
// contiguous row-major buffer plus a shape (up to 4 dimensions, NCHW
// for images). Value semantics; all layers own their activations.

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace rlmul::nt {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);
  /// Gaussian init with the given standard deviation.
  static Tensor randn(std::vector<int> shape, util::Rng& rng, float stddev);

  const std::vector<int>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D / 3-D / 4-D accessors (row-major).
  float& at(int i, int j);
  float at(int i, int j) const;
  float& at(int i, int j, int k);
  float at(int i, int j, int k) const;
  float& at(int i, int j, int k, int l);
  float at(int i, int j, int k, int l) const;

  /// Same data, new shape (numel must match).
  Tensor reshaped(std::vector<int> shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Elementwise in-place helpers used by the optimizers.
  void add_scaled(const Tensor& other, float scale);
  void scale(float factor);

  double sum() const;
  double abs_max() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// shape equality helper for assertions.
bool same_shape(const Tensor& a, const Tensor& b);

}  // namespace rlmul::nt
