#pragma once
// Generic GEMM packing and register-tile kernels, parameterized on the
// micro-tile shape (MR x NR). gemm.cpp instantiates the portable 4x8
// tile (32 accumulators fit the baseline SSE register file);
// gemm_kernels_avx2.cpp instantiates a 6x16 tile in a translation unit
// compiled with -mavx2 -mfma (12 ymm accumulators, the classic
// OpenBLAS-style shape) and gemm.cpp dispatches to it at runtime when
// the CPU supports it. The tile shape only changes how C elements are
// grouped into register blocks — the per-element summation order over
// k is identical for every tile, so picking a tile never changes the
// block schedule's determinism guarantees (FMA contraction does change
// rounding vs mul+add; that is covered by the documented
// reassociation caveat between kernel configurations).

#include <algorithm>
#include <cstddef>

namespace rlmul::nt::detail {

/// One micro-tile implementation, selected per process at runtime.
struct GemmKernels {
  int mr, nr;
  void (*pack_a)(bool trans_a, const float* a, int lda, int m0, int mc,
                 int k0, int kc, float* dst);
  void (*pack_b)(bool trans_b, const float* b, int ldb, int k0, int kc,
                 int n0, int nc, float* dst);
  void (*compute_block)(int m0, int mc, int kc, int n0, int nc,
                        const float* pa, const float* pb, float* c, int ldc);
};

template <int MRV, int NRV>
struct TileKernels {
  /// Packs op(A)[m0..m0+mc, k0..k0+kc) into MR-row panels: panel ir/MR
  /// holds tile[kk*MR + r] = op(A)(m0+ir+r, k0+kk), zero-padded to MR.
  static void pack_a(bool trans_a, const float* a, int lda, int m0, int mc,
                     int k0, int kc, float* dst) {
    for (int ir = 0; ir < mc; ir += MRV) {
      const int mr = std::min(MRV, mc - ir);
      float* tile = dst + static_cast<std::size_t>(ir / MRV) * MRV * kc;
      for (int kk = 0; kk < kc; ++kk) {
        for (int r = 0; r < MRV; ++r) {
          float v = 0.0f;
          if (r < mr) {
            const int row = m0 + ir + r;
            const int col = k0 + kk;
            v = trans_a ? a[static_cast<std::size_t>(col) * lda + row]
                        : a[static_cast<std::size_t>(row) * lda + col];
          }
          tile[static_cast<std::size_t>(kk) * MRV + r] = v;
        }
      }
    }
  }

  /// Packs op(B)[k0..k0+kc, n0..n0+nc) into NR-column panels: panel
  /// jr/NR holds panel[kk*NR + q] = op(B)(k0+kk, n0+jr+q), zero-padded.
  static void pack_b(bool trans_b, const float* b, int ldb, int k0, int kc,
                     int n0, int nc, float* dst) {
    for (int jr = 0; jr < nc; jr += NRV) {
      const int nr = std::min(NRV, nc - jr);
      float* panel = dst + static_cast<std::size_t>(jr / NRV) * kc * NRV;
      for (int kk = 0; kk < kc; ++kk) {
        float* prow = panel + static_cast<std::size_t>(kk) * NRV;
        if (!trans_b) {
          const float* brow =
              b + static_cast<std::size_t>(k0 + kk) * ldb + n0 + jr;
          for (int q = 0; q < NRV; ++q) prow[q] = q < nr ? brow[q] : 0.0f;
        } else {
          for (int q = 0; q < NRV; ++q) {
            prow[q] = q < nr ? b[static_cast<std::size_t>(n0 + jr + q) * ldb +
                                 k0 + kk]
                             : 0.0f;
          }
        }
      }
    }
  }

  /// acc[MR][NR] += sum_k pa_tile ⊗ pb_panel. The fixed-trip inner
  /// loops unroll into MR*NR independent accumulators, which is what
  /// lets the compiler vectorize across NR and hide the FMA latency
  /// chain the naive dot product is serialized on.
  static inline void micro(int kc, const float* __restrict pa,
                           const float* __restrict pb,
                           float* __restrict acc) {
    for (int kk = 0; kk < kc; ++kk) {
      const float* arow = pa + static_cast<std::size_t>(kk) * MRV;
      const float* brow = pb + static_cast<std::size_t>(kk) * NRV;
      for (int r = 0; r < MRV; ++r) {
        const float av = arow[r];
        float* accrow = acc + r * NRV;
        for (int q = 0; q < NRV; ++q) accrow[q] += av * brow[q];
      }
    }
  }

  /// One packed [mc x kc] block times packed panels covering
  /// [n0, n0+nc): C[m0.., n0..) += product.
  static void compute_block(int m0, int mc, int kc, int n0, int nc,
                            const float* pa, const float* pb, float* c,
                            int ldc) {
    for (int jr = 0; jr < nc; jr += NRV) {
      const float* panel = pb + static_cast<std::size_t>(jr / NRV) * kc * NRV;
      const int nr = std::min(NRV, nc - jr);
      for (int ir = 0; ir < mc; ir += MRV) {
        const int mr = std::min(MRV, mc - ir);
        float acc[MRV * NRV] = {0.0f};
        micro(kc, pa + static_cast<std::size_t>(ir / MRV) * MRV * kc, panel,
              acc);
        for (int r = 0; r < mr; ++r) {
          float* crow =
              c + static_cast<std::size_t>(m0 + ir + r) * ldc + n0 + jr;
          const float* accrow = acc + r * NRV;
          for (int q = 0; q < nr; ++q) crow[q] += accrow[q];
        }
      }
    }
  }

  static constexpr GemmKernels kernels() {
    return {MRV, NRV, &pack_a, &pack_b, &compute_block};
  }
};

#if defined(__x86_64__) && defined(__GNUC__)
/// 6x16 tile built with -mavx2 -mfma (gemm_kernels_avx2.cpp). Only
/// dereference after __builtin_cpu_supports("avx2") && ("fma").
extern const GemmKernels kAvx2Kernels;
#endif

}  // namespace rlmul::nt::detail
