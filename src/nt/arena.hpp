#pragma once
// Scratch arena for tensor-kernel temporaries (im2col column buffers,
// packed GEMM panels). A frame-oriented bump allocator: alloc() hands
// out slices that stay valid until the next reset(); reset() recycles
// the full capacity without freeing it, so a steady-state
// forward/backward step performs zero heap allocations once the first
// step has sized the arena. Slices are rounded up to a cache line so
// neighbouring buffers never share one.
//
// Lifetime rules (see docs/architecture.md): each nn module owns its
// arena; Conv2d resets it at the top of forward() and keeps the im2col
// buffer alive through any number of backward() calls — backward never
// resets, it only allocates further slices from the same frame.

#include <cstddef>
#include <type_traits>
#include <vector>

namespace rlmul::nt {

class ScratchArena {
 public:
  /// Uninitialized slice of `n` floats, valid until the next reset().
  /// Growing the arena mid-frame never moves previously returned
  /// slices (overflow goes to a fresh chunk).
  float* alloc(std::size_t n);

  /// Typed slab of `n` trivially-destructible objects carved from the
  /// float store — the SoA lanes of the batched evaluator (double
  /// arrival/load slabs, int32 variant/prev slabs). Every slice starts
  /// on a 64-byte boundary relative to the chunk base and chunks come
  /// from operator new (>= 16-byte aligned), so any fundamental T is
  /// correctly aligned.
  template <class T>
  T* alloc_as(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_copyable_v<T>,
                  "arena slabs hold plain data only");
    static_assert(alignof(T) <= 16, "slice alignment covers fundamentals");
    const std::size_t floats =
        (n * sizeof(T) + sizeof(float) - 1) / sizeof(float);
    return reinterpret_cast<T*>(alloc(floats));
  }

  /// Invalidates all outstanding slices and makes the capacity
  /// available again. If the previous frame overflowed into extra
  /// chunks they are coalesced into one buffer sized to the high-water
  /// mark, so subsequent same-sized frames allocate nothing.
  void reset();

  /// Largest frame footprint seen so far, in floats.
  std::size_t high_water() const { return high_water_; }
  /// Number of backing chunks (1 in steady state).
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::vector<float> data;
    std::size_t used = 0;
  };
  std::vector<Chunk> chunks_;
  std::size_t frame_used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace rlmul::nt
