// Ablation: the 4:2 compressor extension (the paper's "framework is
// designed for potential extension to accommodate more compressor
// variants", Section III-B). Same A2C budget with and without the
// fuse/split actions; the extended action space should reach equal or
// better cost because fusing {3:2 + 2:2} pairs into dedicated 4:2
// cells is residual-neutral but cheaper hardware.

#include <cstdio>

#include "bench/harness.hpp"
#include "rl/a2c.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  bench::print_header("Ablation: 4:2 compressor extension, " +
                      bench::spec_name(spec));

  ct::CompressorTree best_plain;
  for (const bool enable_42 : {false, true}) {
    synth::DesignEvaluator ev(spec);
    rl::A2cOptions opts;
    opts.steps = std::max(1, cfg.rl_steps / 2);
    opts.num_threads = cfg.threads;
    opts.enable_42 = enable_42;
    opts.seed = 707;
    const auto res = rl::train_a2c(ev, opts);
    if (!enable_42) best_plain = res.best_tree;
    std::printf("  4:2 actions %-3s best_cost=%.4f eda_calls=%-5zu "
                "c42_in_best=%d\n",
                enable_42 ? "on" : "off", res.best_cost, res.eda_calls,
                res.best_tree.total_c42());
  }

  // Deterministic upper bound on the extension's value: fuse every
  // {3:2, 2:2} pair of the plain-space winner (residual-neutral, so
  // it is the same matrix in cheaper cells) and re-synthesize.
  ct::CompressorTree fused = best_plain;
  for (int j = 0; j < fused.columns(); ++j) {
    while (fused.c32[j] > 0 && fused.c22[j] > 0) {
      fused = ct::apply_action(fused,
                               {j, ct::ActionKind::kFuse32And22To42});
    }
  }
  const double target = bench::delay_sweep(spec, 3)[1];
  const auto plain_res = synth::synthesize_design(spec, best_plain, target);
  const auto fused_res = synth::synthesize_design(spec, fused, target);
  std::printf("  post-fusing the plain winner: area %.1f -> %.1f um2 "
              "(%.1f%%), delay %.4f -> %.4f ns, %d x 4:2 cells\n",
              plain_res.area_um2, fused_res.area_um2,
              100.0 * (fused_res.area_um2 / plain_res.area_um2 - 1.0),
              plain_res.delay_ns, fused_res.delay_ns, fused.total_c42());
  std::printf("reading: within the same EDA budget the larger action space "
              "explores differently (seed-dependent); the deterministic "
              "fuse shows the cell-level benefit directly\n");
  return 0;
}
