// Fig 13 reproduction: a worked illustration of the hypervolume
// indicator — the area dominated by a Pareto frontier up to a reference
// point, larger is better.

#include <cstdio>

#include "pareto/pareto.hpp"

int main() {
  using namespace rlmul::pareto;

  const std::vector<Point> frontier{{1.0, 9.0}, {2.0, 6.0}, {4.0, 4.0},
                                    {7.0, 2.0}};
  const double ref_x = 10.0;
  const double ref_y = 10.0;

  std::printf("=== Fig 13: hypervolume illustration ===\n");
  std::printf("frontier points (minimize both axes):");
  for (const auto& p : frontier) std::printf(" (%.0f, %.0f)", p.x, p.y);
  std::printf("\nreference point: (%.0f, %.0f)\n", ref_x, ref_y);

  double prev_y = ref_y;
  double total = 0.0;
  for (const auto& p : pareto_filter(frontier)) {
    const double rect = (ref_x - p.x) * (prev_y - p.y);
    std::printf("  slab at x=%.0f: width %.0f, height %.0f -> %.0f\n", p.x,
                ref_x - p.x, prev_y - p.y, rect);
    total += rect;
    prev_y = p.y;
  }
  std::printf("hypervolume = %.0f (matches %.0f from the library)\n", total,
              hypervolume(frontier, ref_x, ref_y));

  // Dominating the frontier strictly grows the hypervolume.
  std::vector<Point> better = frontier;
  better.push_back({1.5, 5.0});
  std::printf("adding a non-dominated point (1.5, 5): HV %.0f -> %.2f\n",
              total, hypervolume(better, ref_x, ref_y));
  return 0;
}
