// Fig 10 reproduction: Pareto frontiers of 16x16 PE arrays implemented
// with each method's multipliers (8/16-bit x AND/MBE). The shape to
// check: the per-multiplier gains of Fig 9 carry over to the macro.

#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();

  for (int bits : {8, 16}) {
    for (const auto ppg_kind : {ppg::PpgKind::kAnd, ppg::PpgKind::kBooth}) {
      const ppg::MultiplierSpec spec{bits, ppg_kind, false};
      bench::print_header("Fig 10: PE-array (multiplier) frontier, " +
                          bench::spec_name(spec));
      const auto methods = bench::run_all_methods(spec, cfg);
      // PE clock sweep: scale the multiplier sweep by the register
      // overhead; pe_frontier re-synthesizes at each clock target.
      auto sweep = bench::delay_sweep(spec, cfg.sweep_points);
      for (double& t : sweep) t *= 1.4;
      const auto pe_methods = bench::to_pe_frontiers(spec, methods, sweep);
      for (const auto& mf : pe_methods) {
        bench::print_frontier(mf.name, mf.front);
      }
      bench::plot_frontiers(pe_methods);
      bench::dump_frontiers_csv(
          "fig10_pe_" + bench::spec_slug(spec) + ".csv", pe_methods);
    }
  }
  return 0;
}
