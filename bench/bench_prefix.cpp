// Joint CT+CPA(+PPG) search vs CT-only menu search A/B at 16 bit under
// the same fixed EDA budget (the PR-7 deliverable): both arms run SA
// through the search driver across the paper's three weight configs;
// the joint arm additionally pins + mutates the CPA prefix graph and
// exposes PPG-family switches as actions. Each arm's Pareto front is
// the evaluator's own (area, delay) archive — exactly the designs
// synthesized under the budget, no post-hoc sweep. Reported per arm:
// hypervolume under a shared reference, EDA consumption, and how many
// of the joint front's points sit on an off-menu CPA graph (a pinned
// prefix graph that is none of RCA/BK/SK/KS). The JSON on stdout is
// the source of results/BENCH_prefix.json.
//
// Knobs: RLMUL_EDA_BUDGET overrides the per-weight-config budget,
// RLMUL_QUICK=1 shrinks it 8x.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "netlist/ct_builder.hpp"
#include "pareto/pareto.hpp"
#include "ppg/ppg.hpp"
#include "prefix/prefix_graph.hpp"
#include "search/driver.hpp"
#include "search/registry.hpp"
#include "synth/evaluator.hpp"
#include "util/build_info.hpp"
#include "util/config.hpp"

namespace {

using namespace rlmul;

/// Payload marker for front points whose design carries an off-menu
/// pinned CPA graph.
constexpr std::size_t kOffMenu = 1;

struct WeightConfig {
  double area;
  double delay;
};
// The same (w_a, w_d) preference sweep the paper-level benches use.
constexpr WeightConfig kWeightSweep[] = {{1.0, 1.0}, {1.0, 0.25},
                                         {0.25, 1.0}};

struct ArmResult {
  pareto::Front front;       ///< merged across weight configs
  std::size_t eda = 0;       ///< unique synthesis evaluations consumed
  std::size_t designs = 0;   ///< unique designs archived
  double best_cost = 0.0;    ///< best (1,1)-weighted cost seen
  std::string best_cpa;      ///< CPA label of the (1,1) best point
};

bool off_menu(const ppg::DesignPoint& point) {
  return point.cpa_pinned() &&
         netlist::cpa_kind_of_graph(point.cpa) == netlist::CpaKind::kCustom;
}

ArmResult run_arm(const ppg::MultiplierSpec& spec, bool joint,
                  std::size_t budget_per_weight, std::uint64_t seed) {
  ArmResult out;
  bool first = true;
  for (std::size_t w = 0; w < std::size(kWeightSweep); ++w) {
    synth::DesignEvaluator evaluator(spec);
    search::MethodConfig cfg;
    // The EDA budget is the binding limit; the step cap only bounds
    // wall time if SA stalls on cached neighbors.
    cfg.steps = static_cast<int>(budget_per_weight) * 4;
    cfg.w_area = kWeightSweep[w].area;
    cfg.w_delay = kWeightSweep[w].delay;
    cfg.search_cpa = joint;
    cfg.search_ppg = joint;
    cfg.seed = seed + w;
    auto method = search::make_method("sa", cfg);
    search::Driver driver(evaluator, {budget_per_weight, 0, nullptr});
    const auto res = driver.run(*method);
    out.eda += res.eda_consumed;
    out.designs += evaluator.num_designs();
    const double cost_11 = evaluator.cost(
        evaluator.evaluate(res.best_point), 1.0, 1.0);
    if (first || cost_11 < out.best_cost) {
      out.best_cost = cost_11;
      out.best_cpa =
          res.best_point.cpa_pinned()
              ? netlist::cpa_kind_name(
                    netlist::cpa_kind_of_graph(res.best_point.cpa))
              : "menu";
      first = false;
    }
    const pareto::Front front = evaluator.frontier();
    for (const auto& p : front.points()) {
      const std::size_t marker =
          off_menu(evaluator.point_of(p.payload)) ? kOffMenu : 0;
      out.front.insert({p.x, p.y, marker});
    }
  }
  return out;
}

void print_front(const char* name, const pareto::Front& front, bool last) {
  std::printf("    \"%s\": [", name);
  const auto pts = front.sorted();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::printf("%s{ \"area_um2\": %.1f, \"delay_ns\": %.4f, "
                "\"off_menu\": %s }",
                i == 0 ? "" : ", ", pts[i].x, pts[i].y,
                pts[i].payload == kOffMenu ? "true" : "false");
  }
  std::printf("]%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  const std::size_t budget = static_cast<std::size_t>(
      util::env_long("RLMUL_EDA_BUDGET", util::scaled(160)));

  const ppg::MultiplierSpec spec{16, ppg::PpgKind::kAnd, false};
  const ArmResult menu = run_arm(spec, false, budget, 77);
  const ArmResult joint = run_arm(spec, true, budget, 77);

  // Shared reference at 1.1x the worst corner across both fronts, so
  // the hypervolumes are comparable.
  double ref_x = 0.0;
  double ref_y = 0.0;
  for (const pareto::Front* f : {&menu.front, &joint.front}) {
    for (const auto& p : f->points()) {
      ref_x = std::max(ref_x, p.x);
      ref_y = std::max(ref_y, p.y);
    }
  }
  ref_x *= 1.1;
  ref_y *= 1.1;
  const double hv_menu = pareto::hypervolume(menu.front.points(), ref_x, ref_y);
  const double hv_joint =
      pareto::hypervolume(joint.front.points(), ref_x, ref_y);

  // Expansion accounting: joint front points the menu front does not
  // cover, and how many of those (plus of the whole joint front) sit on
  // an off-menu CPA graph.
  int uncovered = 0;
  int off_menu_pareto = 0;
  for (const auto& p : joint.front.points()) {
    if (!menu.front.covered(p)) ++uncovered;
    if (p.payload == kOffMenu) ++off_menu_pareto;
  }

  std::printf("{\n");
  std::printf(
      "  \"description\": \"joint CT+CPA+PPG SA search vs CT-only menu SA "
      "at 16 bit, %zu unique-eval EDA budget per weight config (3 configs "
      "per arm, same seeds). Fronts are the evaluator's (area, delay) "
      "archives; hypervolume under a shared 1.1x-worst-corner reference. "
      "off_menu marks Pareto points whose pinned CPA prefix graph is "
      "none of RCA/BK/SK/KS.\",\n",
      budget);
  std::printf("  \"build\": \"%s\",\n", util::build_info().c_str());
  std::printf("  \"spec\": \"16-bit AND multiplier\",\n");
  std::printf("  \"eda_budget_per_weight_config\": %zu,\n", budget);
  std::printf("  \"menu\": { \"eda_consumed\": %zu, \"designs\": %zu, "
              "\"front_size\": %zu, \"hypervolume\": %.6g, "
              "\"best_cost_w11\": %.4f, \"best_cpa\": \"%s\" },\n",
              menu.eda, menu.designs, menu.front.size(), hv_menu,
              menu.best_cost, menu.best_cpa.c_str());
  std::printf("  \"joint\": { \"eda_consumed\": %zu, \"designs\": %zu, "
              "\"front_size\": %zu, \"hypervolume\": %.6g, "
              "\"best_cost_w11\": %.4f, \"best_cpa\": \"%s\", "
              "\"pareto_points_uncovered_by_menu\": %d, "
              "\"off_menu_pareto_points\": %d },\n",
              joint.eda, joint.designs, joint.front.size(), hv_joint,
              joint.best_cost, joint.best_cpa.c_str(), uncovered,
              off_menu_pareto);
  std::printf("  \"hv_joint_over_menu\": %.4f,\n",
              hv_menu > 0.0 ? hv_joint / hv_menu : 0.0);
  std::printf("  \"fronts\": {\n");
  print_front("menu", menu.front, false);
  print_front("joint", joint.front, true);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
