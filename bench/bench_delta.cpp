// Delta-vs-scratch evaluation A/B on trajectory-shaped workloads: the
// same 16-bit move sequences a search method produces (an SA-style
// Metropolis chain with rejections and a DQN-style episodic walk with
// resets) are evaluated step by step through a fresh DesignEvaluator
// with the delta path on (RLMUL_DELTA_EVAL=1, each step hinting its
// pre-move parent exactly as rl::MultiplierEnv::step and SaMethod do)
// and off (=0, today's from-scratch pipeline). Both configs see the
// identical sequence — equal budgets — and throughput is
// unique-designs/sec (repeat visits resolve from the evaluator cache
// identically in both configs). Before timing, the delta results are
// checked bit-for-bit (per double) against scratch — the
// "bit_identical" field records it. The JSON on stdout is the source
// of results/BENCH_delta.json.
//
// Knobs: RLMUL_QUICK=1 shortens the trajectories.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "ct/compressor_tree.hpp"
#include "ppg/ppg.hpp"
#include "synth/evaluator.hpp"
#include "synth/synth.hpp"
#include "util/build_info.hpp"
#include "util/config.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlmul;

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool same_result(const synth::SynthesisResult& a,
                 const synth::SynthesisResult& b) {
  return bits_equal(a.area_um2, b.area_um2) &&
         bits_equal(a.delay_ns, b.delay_ns) &&
         bits_equal(a.power_mw, b.power_mw) && a.met_target == b.met_target &&
         a.cpa == b.cpa && a.num_gates == b.num_gates;
}

/// One search step: the post-move design plus the pre-move state's key
/// (what the env/SA hand the evaluator as the delta parent).
struct TrajStep {
  ct::CompressorTree tree;
  std::string parent_key;
};

ct::CompressorTree random_child(const ct::CompressorTree& cur,
                                util::Rng& rng) {
  const auto mask = ct::legal_action_mask(cur);
  std::vector<int> legal;
  for (int k = 0; k < static_cast<int>(mask.size()); ++k) {
    if (mask[k]) legal.push_back(k);
  }
  if (legal.empty()) return cur;
  return ct::apply_action(
      cur, ct::action_from_index(legal[rng.next() % legal.size()]));
}

/// SA shape: propose a child of the current state each step; accept it
/// with p=0.7 (rejects keep proposing more children off one retained
/// parent, like a cooling Metropolis chain).
std::vector<TrajStep> sa_trajectory(const ppg::MultiplierSpec& spec,
                                    int steps, std::uint64_t seed) {
  util::Rng rng(seed);
  ct::CompressorTree cur = ppg::initial_tree(spec);
  std::vector<TrajStep> out;
  for (int i = 0; i < steps; ++i) {
    ct::CompressorTree child = random_child(cur, rng);
    if (child.key() == cur.key()) break;  // dead end
    out.push_back({child, cur.key()});
    if (rng.next_bool(0.7)) cur = std::move(child);
  }
  return out;
}

/// DQN shape: always step to the sampled child, reset to the initial
/// tree every `horizon` steps (episode boundary; the first post-reset
/// step parents the initial state, which may have aged out of the LRU).
std::vector<TrajStep> dqn_trajectory(const ppg::MultiplierSpec& spec,
                                     int steps, int horizon,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  const ct::CompressorTree initial = ppg::initial_tree(spec);
  ct::CompressorTree cur = initial;
  std::vector<TrajStep> out;
  for (int i = 0; i < steps; ++i) {
    if (i > 0 && i % horizon == 0) cur = initial;
    ct::CompressorTree child = random_child(cur, rng);
    if (child.key() == cur.key()) break;
    out.push_back({child, cur.key()});
    cur = std::move(child);
  }
  return out;
}

std::size_t unique_designs(const std::vector<TrajStep>& traj) {
  std::set<std::string> keys;
  for (const TrajStep& s : traj) keys.insert(s.tree.key());
  return keys.size();
}

/// Replays the trajectory through a fresh evaluator (ctor outside the
/// timed region — it evaluates and retains the initial tree in both
/// configs). Best wall of `reps`; optionally captures per-step evals.
double time_traj(const ppg::MultiplierSpec& spec,
                 const std::vector<double>& targets,
                 const std::vector<TrajStep>& traj, bool delta_on, int reps,
                 std::vector<synth::DesignEval>* capture = nullptr) {
  setenv("RLMUL_DELTA_EVAL", delta_on ? "1" : "0", 1);
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    synth::EvaluatorOptions eopts;
    eopts.batch = 1;
    synth::DesignEvaluator evaluator(spec, targets, eopts);
    if (capture) capture->clear();
    const auto t0 = std::chrono::steady_clock::now();
    for (const TrajStep& s : traj) {
      synth::DesignEval e =
          evaluator.evaluate(s.tree, synth::ParentHint{s.parent_key});
      if (capture) capture->push_back(std::move(e));
    }
    const double w =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (w < best) best = w;
  }
  unsetenv("RLMUL_DELTA_EVAL");
  return best;
}

}  // namespace

int main() {
  const bool quick = util::quick_mode();
  const int steps = quick ? 24 : 96;
  const int reps = quick ? 1 : 3;
  const ppg::MultiplierSpec spec{16, ppg::PpgKind::kAnd, false};
  const std::vector<double> targets = synth::default_targets(spec);

  std::printf("{\n");
  std::printf(
      "  \"description\": \"delta evaluation A/B on trajectory-shaped "
      "workloads: 16-bit SA (Metropolis, p_accept=0.7) and DQN (episodic, "
      "horizon 12) move sequences of %d steps, evaluated per step with the "
      "pre-move parent hint. delta_off = RLMUL_DELTA_EVAL=0 from-scratch "
      "pipeline; both configs replay the identical sequence (equal budgets) "
      "and rates are unique-designs/sec, best of %d reps. bit_identical: "
      "delta results memcmp-equal (per double) to scratch. delta_hits / "
      "delta_fallbacks: retained-parent patches vs hinted-but-rebuilt "
      "steps during the identity pass.\",\n",
      steps, reps);
  std::printf("  \"build\": \"%s\",\n", util::build_info().c_str());
  std::printf("  \"cpus\": %u,\n", std::thread::hardware_concurrency());
  std::printf("  \"configs\": {\n");

  struct Workload {
    const char* name;
    std::vector<TrajStep> traj;
  };
  const Workload workloads[] = {
      {"sa_16bit", sa_trajectory(spec, steps, 0xA11CE)},
      {"dqn_16bit", dqn_trajectory(spec, steps, 12, 0xB0B)},
  };

  for (std::size_t wi = 0; wi < std::size(workloads); ++wi) {
    const Workload& w = workloads[wi];
    const std::size_t uniq = unique_designs(w.traj);

    // Bit-exactness gate (also the counter source): one captured pass
    // per config, compared field-by-field.
    auto& counters = util::perf_counters();
    const std::uint64_t hits0 = counters.eval_delta_hits.load();
    const std::uint64_t fb0 = counters.eval_delta_fallbacks.load();
    std::vector<synth::DesignEval> on_evals;
    time_traj(spec, targets, w.traj, /*delta_on=*/true, 1, &on_evals);
    const std::uint64_t hits = counters.eval_delta_hits.load() - hits0;
    const std::uint64_t fallbacks = counters.eval_delta_fallbacks.load() - fb0;
    std::vector<synth::DesignEval> off_evals;
    time_traj(spec, targets, w.traj, /*delta_on=*/false, 1, &off_evals);
    bool identical = on_evals.size() == off_evals.size();
    for (std::size_t i = 0; identical && i < on_evals.size(); ++i) {
      if (on_evals[i].per_target.size() != off_evals[i].per_target.size()) {
        identical = false;
        break;
      }
      for (std::size_t t = 0; t < on_evals[i].per_target.size(); ++t) {
        if (!same_result(on_evals[i].per_target[t],
                         off_evals[i].per_target[t])) {
          identical = false;
        }
      }
    }

    const double wall_off =
        time_traj(spec, targets, w.traj, /*delta_on=*/false, reps);
    const double wall_on =
        time_traj(spec, targets, w.traj, /*delta_on=*/true, reps);
    const double rate_off =
        wall_off > 0.0 ? static_cast<double>(uniq) / wall_off : 0.0;
    const double rate_on =
        wall_on > 0.0 ? static_cast<double>(uniq) / wall_on : 0.0;

    std::printf("    \"%s\": {\n", w.name);
    std::printf("      \"steps\": %zu,\n", w.traj.size());
    std::printf("      \"designs\": %zu,\n", uniq);
    std::printf("      \"bit_identical\": %s,\n", identical ? "true" : "false");
    std::printf("      \"delta_hits\": %llu,\n",
                static_cast<unsigned long long>(hits));
    std::printf("      \"delta_fallbacks\": %llu,\n",
                static_cast<unsigned long long>(fallbacks));
    std::printf("      \"delta_off\": { \"wall_s\": %.4f, "
                "\"designs_per_s\": %.1f, \"speedup_vs_off\": 1.00 },\n",
                wall_off, rate_off);
    std::printf("      \"delta_on\": { \"wall_s\": %.4f, "
                "\"designs_per_s\": %.1f, \"speedup_vs_off\": %.2f }\n",
                wall_on, rate_on,
                rate_off > 0.0 ? rate_on / rate_off : 0.0);
    std::printf("    }%s\n", wi + 1 < std::size(workloads) ? "," : "");
  }
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
