// Load test for the serve daemon (src/serve/): an in-process Server on
// a real unix socket, hammered by concurrent clients issuing a mixed
// request stream (~10% submit, ~60% status, ~20% stats, ~10% cancel).
// Correctness is asserted, not sampled: every request must get exactly
// its own response (the client library matches ids — a lost or
// duplicated frame shows up as a hang or a count mismatch), and every
// subscribed job's event stream must arrive gap-free (seq 0..N-1, with
// the final count cross-checked against the server's own event
// counter). The JSON on stdout is the source of results/BENCH_serve.json.
//
// Knobs: RLMUL_QUICK=1 shrinks the request volume CI-size; the full
// run issues >= 2000 requests from 8 clients.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/build_info.hpp"

namespace {

using namespace rlmul;
using Clock = std::chrono::steady_clock;

struct ClientReport {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t submits = 0;
  std::uint64_t cancels = 0;
  std::uint64_t seq_violations = 0;
  std::uint64_t dropped_events = 0;
  std::uint64_t errors = 0;  ///< transport/protocol failures (must be 0)
  std::vector<double> latency_us;
};

bool event_terminal(const serve::json::Value& ev) {
  const serve::json::Value* type = ev.find("event");
  if (!type || type->as_string() != "state") return false;
  const std::string& st = ev.find("state")->as_string();
  return st == "done" || st == "failed" || st == "cancelled";
}

/// One client's whole session: the mixed request stream, then a drain
/// phase that waits for every subscribed job to reach a terminal event
/// and cross-checks the received event counts.
ClientReport run_client(const std::string& sock, int id, int requests,
                        int steps) {
  ClientReport rep;
  rep.latency_us.reserve(static_cast<std::size_t>(requests));
  try {
    serve::Client client(sock);
    std::vector<std::uint64_t> jobs;
    std::map<std::uint64_t, std::uint64_t> next_seq;
    std::map<std::uint64_t, bool> terminal;

    auto take_events = [&]() {
      serve::json::Value ev;
      while (client.poll_event(&ev)) {
        const std::uint64_t job = ev.find("job")->as_u64();
        const std::uint64_t seq = ev.find("seq")->as_u64();
        if (seq != next_seq[job]) ++rep.seq_violations;
        next_seq[job] = seq + 1;
        if (event_terminal(ev)) terminal[job] = true;
      }
    };

    for (int r = 0; r < requests; ++r) {
      const auto t0 = Clock::now();
      // r == 0 is always a submit so status/cancel have a target.
      if (r % 10 == 0) {
        serve::JobSpec spec;
        spec.bits = 4;
        spec.method = "sa";
        spec.steps = steps;
        spec.seed = static_cast<std::uint64_t>(1000 * id + r + 1);
        jobs.push_back(client.submit(spec, /*subscribe=*/true));
        ++rep.submits;
      } else if (r % 10 == 9) {
        // Cancel races the job finishing; "already done" is a valid
        // response, so use raw call() and accept both outcomes.
        serve::json::Value req = serve::json::Value::object();
        req["op"] = "cancel";
        req["job"] = jobs.back();
        (void)client.call(std::move(req));
        ++rep.cancels;
      } else if (r % 10 >= 7) {
        (void)client.stats();
      } else {
        (void)client.status(jobs.back());
      }
      rep.latency_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count());
      ++rep.requests;
      ++rep.responses;  // call() returned: the matching frame arrived
      take_events();
    }

    // Drain: every subscribed job must deliver its terminal event.
    const auto deadline = Clock::now() + std::chrono::seconds(120);
    for (std::uint64_t job : jobs) {
      while (!terminal[job] && Clock::now() < deadline) {
        serve::json::Value ev;
        if (client.wait_event(&ev, 250)) {
          const std::uint64_t j = ev.find("job")->as_u64();
          const std::uint64_t seq = ev.find("seq")->as_u64();
          if (seq != next_seq[j]) ++rep.seq_violations;
          next_seq[j] = seq + 1;
          if (event_terminal(ev)) terminal[j] = true;
        }
      }
      if (!terminal[job]) ++rep.dropped_events;
    }
    // Cross-check: we must have seen exactly as many events as the
    // server emitted for each of our jobs.
    for (std::uint64_t job : jobs) {
      const serve::json::Value st = client.status(job);
      if (st.find("events")->as_u64() != next_seq[job]) ++rep.dropped_events;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "client %d: %s\n", id, e.what());
    ++rep.errors;
  }
  return rep;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main() {
  const bool quick = [] {
    const char* q = std::getenv("RLMUL_QUICK");
    return q && std::string(q) == "1";
  }();
  const int kClients = 8;
  const int kRequests = quick ? 40 : 250;  // per client; full run >= 2000
  const int kSteps = 30;

  const std::string sock =
      (std::filesystem::temp_directory_path() / "rlmul_bench_serve.sock")
          .string();
  std::filesystem::remove(sock);

  serve::ServerOptions opts;
  opts.socket_path = sock;
  opts.scheduler.max_active = 2;
  opts.scheduler.max_queue = 4096;  // admission never bounces the bench
  opts.scheduler.step_threads = 2;
  serve::Server server(opts);
  std::thread server_thread([&server]() { server.run(); });
  // Wait until the listener accepts (bind and listen happen in run()).
  for (int i = 0; i < 500; ++i) {
    try {
      serve::Client probe(sock);
      probe.ping();
      break;
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  const auto t0 = Clock::now();
  std::vector<ClientReport> reports(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&reports, &sock, c, kRequests]() {
      reports[static_cast<std::size_t>(c)] =
          run_client(sock, c, kRequests, kSteps);
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  ClientReport total;
  std::vector<double> latency;
  for (const ClientReport& r : reports) {
    total.requests += r.requests;
    total.responses += r.responses;
    total.submits += r.submits;
    total.cancels += r.cancels;
    total.seq_violations += r.seq_violations;
    total.dropped_events += r.dropped_events;
    total.errors += r.errors;
    latency.insert(latency.end(), r.latency_us.begin(), r.latency_us.end());
  }

  serve::Client admin(sock);
  const serve::json::Value stats = admin.stats();
  admin.shutdown_server();
  server_thread.join();

  const bool pass = total.errors == 0 && total.seq_violations == 0 &&
                    total.dropped_events == 0 &&
                    total.responses == total.requests;

  std::printf("{\n");
  std::printf(
      "  \"description\": \"serve daemon load test: %d concurrent clients, "
      "%llu mixed requests (10%% submit with subscription, 60%% status, "
      "20%% stats, 10%% cancel) against one in-process daemon. Zero lost or "
      "duplicated responses (per-request id matching) and zero dropped "
      "event frames (per-job seq contiguity plus a final count "
      "cross-check) are asserted, not sampled.\",\n",
      kClients, static_cast<unsigned long long>(total.requests));
  std::printf("  \"build\": \"%s\",\n", util::build_info().c_str());
  std::printf("  \"clients\": %d,\n", kClients);
  std::printf("  \"requests\": %llu,\n",
              static_cast<unsigned long long>(total.requests));
  std::printf("  \"responses\": %llu,\n",
              static_cast<unsigned long long>(total.responses));
  std::printf("  \"submits\": %llu,\n",
              static_cast<unsigned long long>(total.submits));
  std::printf("  \"cancels\": %llu,\n",
              static_cast<unsigned long long>(total.cancels));
  std::printf("  \"lost_responses\": %llu,\n",
              static_cast<unsigned long long>(total.requests -
                                              total.responses));
  std::printf("  \"seq_violations\": %llu,\n",
              static_cast<unsigned long long>(total.seq_violations));
  std::printf("  \"dropped_events\": %llu,\n",
              static_cast<unsigned long long>(total.dropped_events));
  std::printf("  \"client_errors\": %llu,\n",
              static_cast<unsigned long long>(total.errors));
  std::printf("  \"jobs_done\": %llu,\n",
              static_cast<unsigned long long>(stats.find("done")->as_u64()));
  std::printf(
      "  \"jobs_cancelled\": %llu,\n",
      static_cast<unsigned long long>(stats.find("cancelled")->as_u64()));
  std::printf("  \"shared_evaluators\": %llu,\n",
              static_cast<unsigned long long>(
                  stats.find("evaluators")->as_u64()));
  std::printf("  \"wall_s\": %.3f,\n", wall_s);
  std::printf("  \"req_per_s\": %.0f,\n",
              wall_s > 0.0 ? static_cast<double>(total.requests) / wall_s
                           : 0.0);
  std::printf("  \"latency_p50_us\": %.0f,\n", percentile(latency, 0.50));
  std::printf("  \"latency_p99_us\": %.0f,\n", percentile(latency, 0.99));
  std::printf("  \"pass\": %s\n", pass ? "true" : "false");
  std::printf("}\n");

  std::filesystem::remove(sock);
  return pass ? 0 : 1;
}
