// Table III reproduction: merged-MAC and MAC-implemented PE-array
// area/timing under the three preferences (8/16-bit).

#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();

  struct Pref {
    const char* name;
    bench::Selection (*pick)(const pareto::Front&);
  };
  const Pref prefs[] = {
      {"Area", bench::min_area_point},
      {"Timing", bench::min_delay_point},
      {"Trade-off", bench::tradeoff_point},
  };

  for (int bits : {8, 16}) {
    const ppg::MultiplierSpec spec{bits, ppg::PpgKind::kAnd, true};
    bench::print_header("Table III: " + bench::spec_name(spec) +
                        " and its PE array");
    const auto methods = bench::run_all_methods(spec, cfg);
    auto sweep = bench::delay_sweep(spec, cfg.sweep_points);
    for (double& t : sweep) t *= 1.4;
    const auto pe_methods = bench::to_pe_frontiers(spec, methods, sweep);

    std::printf("%-11s %-9s %-11s %-10s %-12s %-10s\n", "Preference",
                "Method", "MAC area", "MAC delay", "PE area", "PE delay");
    for (const Pref& pref : prefs) {
      for (std::size_t m = 0; m < methods.size(); ++m) {
        const auto mac_sel = pref.pick(methods[m].front);
        const auto pe_sel = pref.pick(pe_methods[m].front);
        std::printf("%-11s %-9s %-11.1f %-10.4f %-12.0f %-10.4f\n",
                    pref.name, methods[m].name.c_str(), mac_sel.area,
                    mac_sel.delay, pe_sel.area, pe_sel.delay);
      }
    }
  }
  return 0;
}
