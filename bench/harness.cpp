#include "bench/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "baselines/gomil.hpp"
#include "search/driver.hpp"
#include "search/registry.hpp"
#include "synth/synth.hpp"
#include "util/ascii_plot.hpp"
#include "util/build_info.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace rlmul::bench {

Config config() {
  Config cfg;
  cfg.rl_steps = static_cast<int>(
      util::env_long("RLMUL_STEPS", util::scaled(180)));
  cfg.threads = static_cast<int>(util::env_long("RLMUL_THREADS", 4));
  cfg.seeds = static_cast<int>(
      util::env_long("RLMUL_SEEDS", util::quick_mode() ? 2 : 3));
  cfg.sweep_points = static_cast<int>(
      util::env_long("RLMUL_SWEEP", util::quick_mode() ? 4 : 6));
  cfg.samples = static_cast<int>(
      util::env_long("RLMUL_SAMPLES", util::scaled(60)));
  cfg.eda_budget = static_cast<std::size_t>(
      util::env_long("RLMUL_EDA_BUDGET", 0));
  return cfg;
}

std::vector<double> delay_sweep(const ppg::MultiplierSpec& spec, int n) {
  const ct::CompressorTree wallace = ppg::initial_tree(spec);
  const synth::PreparedDesign prep(spec, wallace);
  const auto tight = prep.synthesize(0.01);
  const auto loose = prep.synthesize(1e9);
  const double lo = tight.delay_ns * 0.9;
  const double hi = loose.delay_ns * 1.1;
  std::vector<double> sweep;
  for (int i = 0; i < n; ++i) {
    const double f = n == 1 ? 0.5 : static_cast<double>(i) / (n - 1);
    sweep.push_back(lo + f * (hi - lo));
  }
  return sweep;
}

pareto::Front design_frontier(const ppg::MultiplierSpec& spec,
                              const std::vector<ct::CompressorTree>& trees,
                              const std::vector<double>& sweep) {
  pareto::Front front;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    // One prepared design per tree: the PPG + compressor-tree prefix
    // and the per-CPA timing graphs are shared across the whole sweep.
    const synth::PreparedDesign prep(spec, trees[i]);
    for (double target : sweep) {
      const auto res = prep.synthesize(target);
      front.insert({res.area_um2, res.delay_ns, i});
    }
  }
  return front;
}

pareto::Front pe_frontier(const ppg::MultiplierSpec& spec,
                          const std::vector<ct::CompressorTree>& trees,
                          const std::vector<double>& sweep,
                          const pe::PeArrayOptions& opts) {
  pareto::Front front;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (double target : sweep) {
      const auto res = pe::synthesize_pe_array(spec, trees[i], target, opts);
      front.insert({res.area_um2, res.delay_ns, i});
    }
  }
  return front;
}

namespace {

/// Keeps the evaluator-frontier designs plus the best tree, deduped and
/// capped so downstream sweeps stay affordable.
std::vector<ct::CompressorTree> collect_candidates(
    const synth::DesignEvaluator& evaluator,
    const ct::CompressorTree& best, std::size_t cap = 8) {
  std::vector<ct::CompressorTree> out{best};
  for (const auto& p : evaluator.frontier().sorted()) {
    const ct::CompressorTree tree = evaluator.design(p.payload);
    bool dup = false;
    for (const auto& existing : out) {
      if (existing == tree) dup = true;
    }
    if (!dup) out.push_back(tree);
    if (out.size() >= cap) break;
  }
  return out;
}

}  // namespace

std::vector<ct::CompressorTree> wallace_candidates(
    const ppg::MultiplierSpec& spec) {
  return {ppg::initial_tree(spec)};
}

std::vector<ct::CompressorTree> gomil_candidates(
    const ppg::MultiplierSpec& spec) {
  return {baselines::gomil_tree(spec)};
}

namespace {

/// The paper trains under several (w_a, w_d) preferences ("the weights
/// range from 0 to 1, resulting in different optimization preferences
/// towards area or delay"); each search method splits its EDA budget
/// across these configurations.
struct WeightConfig {
  double area;
  double delay;
};
constexpr WeightConfig kWeightSweep[] = {{1.0, 1.0}, {1.0, 0.25},
                                         {0.25, 1.0}};
constexpr int kNumWeightConfigs =
    static_cast<int>(sizeof(kWeightSweep) / sizeof(kWeightSweep[0]));

void merge_candidates(std::vector<ct::CompressorTree>& into,
                      const std::vector<ct::CompressorTree>& more) {
  for (const auto& tree : more) {
    bool dup = false;
    for (const auto& existing : into) dup |= (existing == tree);
    if (!dup) into.push_back(tree);
  }
}

}  // namespace

std::vector<ct::CompressorTree> method_candidates(
    const ppg::MultiplierSpec& spec, const std::string& method, int steps,
    int threads, std::uint64_t seed, std::size_t eda_budget) {
  // The one-shot baselines propose exactly their closed-form design —
  // no weight sweep, no frontier collection (the frontier would only
  // re-add the Wallace starting point to every candidate set).
  if (method == "wallace") return wallace_candidates(spec);
  if (method == "gomil") return gomil_candidates(spec);

  std::vector<ct::CompressorTree> out;
  for (int w = 0; w < kNumWeightConfigs; ++w) {
    synth::DesignEvaluator evaluator(spec);
    search::MethodConfig cfg;
    cfg.steps = std::max(1, steps / kNumWeightConfigs);
    // DQN explores randomly for the first eighth of its budget; A2C
    // runs the same number of per-thread steps as the sequential
    // methods (the paper budgets equal *wall time*, Section IV-A), so
    // the parallel workers collect ~threads-times more EDA feedback.
    if (method == "dqn") cfg.warmup = std::max(4, cfg.steps / 8);
    cfg.threads = threads;
    cfg.w_area = kWeightSweep[w].area;
    cfg.w_delay = kWeightSweep[w].delay;
    cfg.seed = seed + static_cast<std::uint64_t>(w);
    auto m = search::make_method(method, cfg);
    search::Driver driver(evaluator, {eda_budget, 0});
    const auto res = driver.run(*m);
    merge_candidates(out, collect_candidates(evaluator, res.best_tree, 4));
  }
  return out;
}

std::vector<ct::CompressorTree> sa_candidates(const ppg::MultiplierSpec& spec,
                                              int steps,
                                              std::uint64_t seed) {
  return method_candidates(spec, "sa", steps, 1, seed, 0);
}

std::vector<ct::CompressorTree> dqn_candidates(const ppg::MultiplierSpec& spec,
                                               int steps,
                                               std::uint64_t seed) {
  return method_candidates(spec, "dqn", steps, 1, seed, 0);
}

std::vector<ct::CompressorTree> a2c_candidates(const ppg::MultiplierSpec& spec,
                                               int steps, int threads,
                                               std::uint64_t seed) {
  return method_candidates(spec, "a2c", steps, threads, seed, 0);
}

std::vector<MethodFrontier> run_all_methods(const ppg::MultiplierSpec& spec,
                                            const Config& cfg) {
  const auto sweep = delay_sweep(spec, cfg.sweep_points);
  std::vector<MethodFrontier> out;
  // Display name, registry name, base seed — dispatched by string
  // through the search registry.
  struct Entry {
    const char* display;
    const char* method;
    std::uint64_t seed;
  };
  constexpr Entry kEntries[] = {{"Wallace", "wallace", 0},
                                {"GOMIL", "gomil", 0},
                                {"SA", "sa", 101},
                                {"RL-MUL", "dqn", 202},
                                {"RL-MUL-E", "a2c", 303}};
  for (const Entry& entry : kEntries) {
    MethodFrontier mf;
    mf.name = entry.display;
    mf.candidates = method_candidates(spec, entry.method, cfg.rl_steps,
                                      cfg.threads, entry.seed,
                                      cfg.eda_budget);
    mf.front = design_frontier(spec, mf.candidates, sweep);
    out.push_back(std::move(mf));
  }
  print_perf_counters();
  return out;
}

void print_perf_counters() {
  // Provenance first, counters second: anything archiving the counters
  // line can also capture which build produced it.
  std::printf("RLMUL_BUILD %s\n", util::build_info().c_str());
  std::printf("RLMUL_COUNTERS %s\n", util::format_perf_counters().c_str());
}

std::vector<MethodFrontier> to_pe_frontiers(
    const ppg::MultiplierSpec& spec, const std::vector<MethodFrontier>& in,
    const std::vector<double>& sweep, const pe::PeArrayOptions& opts) {
  std::vector<MethodFrontier> out;
  for (const auto& mf : in) {
    MethodFrontier pe_mf;
    pe_mf.name = mf.name;
    pe_mf.candidates = mf.candidates;
    pe_mf.front = pe_frontier(spec, mf.candidates, sweep, opts);
    out.push_back(std::move(pe_mf));
  }
  return out;
}

Selection min_area_point(const pareto::Front& front) {
  Selection best{std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::infinity()};
  for (const auto& p : front.points()) {
    if (p.x < best.area) best = {p.x, p.y};
  }
  return best;
}

Selection min_delay_point(const pareto::Front& front) {
  Selection best{std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::infinity()};
  for (const auto& p : front.points()) {
    if (p.y < best.delay) best = {p.x, p.y};
  }
  return best;
}

Selection tradeoff_point(const pareto::Front& front) {
  Selection best;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& p : front.points()) {
    const double score = p.x * p.y;
    if (score < best_score) {
      best_score = score;
      best = {p.x, p.y};
    }
  }
  return best;
}

std::vector<double> hypervolumes(const std::vector<MethodFrontier>& fronts) {
  double ref_x = 0.0;
  double ref_y = 0.0;
  for (const auto& mf : fronts) {
    for (const auto& p : mf.front.points()) {
      ref_x = std::max(ref_x, p.x);
      ref_y = std::max(ref_y, p.y);
    }
  }
  ref_x *= 1.1;
  ref_y *= 1.1;
  std::vector<double> out;
  for (const auto& mf : fronts) {
    out.push_back(pareto::hypervolume(mf.front.points(), ref_x, ref_y));
  }
  return out;
}

std::vector<ct::CompressorTree> random_trees(const ppg::MultiplierSpec& spec,
                                             int count, int walk_length,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ct::CompressorTree> out;
  for (int c = 0; c < count; ++c) {
    ct::CompressorTree tree = ppg::initial_tree(spec);
    const int steps =
        1 + static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(walk_length)));
    for (int s = 0; s < steps; ++s) {
      const auto mask = ct::legal_action_mask(tree);
      std::vector<double> w(mask.size());
      for (std::size_t i = 0; i < mask.size(); ++i) w[i] = mask[i];
      const auto pick = rng.sample_discrete(w);
      if (pick >= mask.size()) break;
      tree = ct::apply_action(tree,
                              ct::action_from_index(static_cast<int>(pick)));
    }
    out.push_back(std::move(tree));
  }
  return out;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_frontier(const std::string& name, const pareto::Front& front) {
  std::printf("%-9s:", name.c_str());
  for (const auto& p : front.sorted()) {
    std::printf(" (%.0f, %.4f)", p.x, p.y);
  }
  std::printf("\n");
}

void plot_frontiers(const std::vector<MethodFrontier>& methods) {
  std::vector<util::PlotSeries> series;
  for (const auto& mf : methods) {
    util::PlotSeries s;
    s.name = mf.name;
    for (const auto& p : mf.front.sorted()) s.points.emplace_back(p.x, p.y);
    series.push_back(std::move(s));
  }
  util::PlotOptions opts;
  opts.x_label = "area um2";
  opts.y_label = "delay ns";
  std::printf("%s", util::ascii_scatter(series, opts).c_str());
}

void dump_frontiers_csv(const std::string& filename,
                        const std::vector<MethodFrontier>& methods) {
  util::CsvWriter csv(util::output_dir() + filename);
  csv.row({"method", "area_um2", "delay_ns"});
  for (const auto& mf : methods) {
    for (const auto& p : mf.front.sorted()) {
      csv.begin_row().add(mf.name).add(p.x).add(p.y);
    }
  }
}

std::string spec_name(const ppg::MultiplierSpec& spec) {
  std::string s = std::to_string(spec.bits) + "-bit " +
                  ppg::ppg_kind_name(spec.ppg);
  s += spec.mac ? " MAC" : " multiplier";
  return s;
}

std::string spec_slug(const ppg::MultiplierSpec& spec) {
  std::string s = std::to_string(spec.bits) + "b_";
  s += ppg::ppg_kind_name(spec.ppg);
  s += spec.mac ? "_mac" : "_mul";
  return s;
}

}  // namespace rlmul::bench
