// Ablation: parallel A2C workers (Section IV-A). Same total EDA budget
// split across 1/2/4 threads; expected: more workers reach a similar
// best cost in less wall-clock time (the synthesis calls overlap).

#include <chrono>
#include <cstdio>

#include "bench/harness.hpp"
#include "rl/a2c.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  bench::print_header("Ablation: A2C thread count, " +
                      bench::spec_name(spec));

  for (int threads : {1, 2, 4}) {
    synth::DesignEvaluator ev(spec);
    rl::A2cOptions opts;
    opts.steps = std::max(1, cfg.rl_steps / threads);
    opts.num_threads = threads;
    opts.seed = 606;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = rl::train_a2c(ev, opts);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("  threads=%d steps/thread=%-4d best_cost=%.4f "
                "eda_calls=%-5zu wall=%.2fs\n",
                threads, opts.steps, res.best_cost, res.eda_calls, secs);
  }
  return 0;
}
