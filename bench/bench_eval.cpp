// Batched-vs-single evaluation A/B for the SoA batch pipeline
// (src/synth/batch_eval.*): the same pool of never-seen-before designs
// is evaluated through evaluate_batch() at batch sizes 1/4/8/16, each
// against a fresh evaluator so every design is a cache miss. Batch 1
// disables coalescing and is the per-design baseline the ISSUE's >= 3x
// target (batch >= 8, 16-bit) is measured against. Before timing, the
// batched results are checked bit-for-bit (per double, via memcmp)
// against the single path — the "bit_identical" field records it. The
// JSON on stdout is the source of results/BENCH_eval.json.
//
// Knobs: RLMUL_QUICK=1 quarters the design count.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "ppg/ppg.hpp"
#include "synth/evaluator.hpp"
#include "synth/synth.hpp"
#include "util/build_info.hpp"
#include "util/config.hpp"

namespace {

using namespace rlmul;

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Field-wise bitwise equality (SynthesisResult has padding, so a
/// whole-struct memcmp would compare indeterminate bytes).
bool same_result(const synth::SynthesisResult& a,
                 const synth::SynthesisResult& b) {
  return bits_equal(a.area_um2, b.area_um2) &&
         bits_equal(a.delay_ns, b.delay_ns) &&
         bits_equal(a.power_mw, b.power_mw) && a.met_target == b.met_target &&
         a.cpa == b.cpa && a.num_gates == b.num_gates;
}

std::vector<ct::CompressorTree> unique_pool(const ppg::MultiplierSpec& spec,
                                            int want) {
  auto pool = bench::random_trees(spec, want * 2, 6, 43);
  std::set<std::string> seen{ppg::initial_tree(spec).key()};
  std::vector<ct::CompressorTree> unique;
  for (auto& t : pool) {
    if (seen.insert(t.key()).second) unique.push_back(std::move(t));
    if (static_cast<int>(unique.size()) == want) break;
  }
  return unique;
}

/// Wall seconds to evaluate the whole pool in groups of `batch`
/// through a fresh evaluator (batch == 1 uses the per-call single
/// path). Best of `reps` — this box is noisy.
double time_pool(const ppg::MultiplierSpec& spec,
                 const std::vector<double>& targets,
                 const std::vector<ct::CompressorTree>& pool, int batch,
                 int reps) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    synth::EvaluatorOptions eopts;
    eopts.batch = batch;
    synth::DesignEvaluator evaluator(spec, targets, eopts);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i + static_cast<std::size_t>(batch) <= pool.size();
         i += static_cast<std::size_t>(batch)) {
      if (batch > 1) {
        const std::vector<ct::CompressorTree> group(
            pool.begin() + static_cast<std::ptrdiff_t>(i),
            pool.begin() + static_cast<std::ptrdiff_t>(i + batch));
        evaluator.evaluate_batch(group);
      } else {
        evaluator.evaluate(pool[i]);
      }
    }
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  const bool quick = util::quick_mode();
  const int designs = quick ? 16 : 48;
  const int reps = quick ? 1 : 3;
  const std::vector<int> batches{1, 4, 8, 16};

  std::printf("{\n");
  std::printf(
      "  \"description\": \"batched SoA evaluation A/B: %d unique designs "
      "per config, fresh evaluator per run (every design a cache miss), "
      "best of %d reps. batch 1 = per-design single path; speedups are "
      "unique-designs/sec relative to it. bit_identical: batched results "
      "memcmp-equal (per double) to the single path.\",\n",
      designs, reps);
  std::printf("  \"build\": \"%s\",\n", util::build_info().c_str());
  // Context for the speedups: on 1 CPU the drain cannot spread designs
  // across pool workers, so only the lane-sharing over targets shows;
  // multi-core machines add cross-design parallelism on top.
  std::printf("  \"cpus\": %u,\n", std::thread::hardware_concurrency());
  std::printf("  \"configs\": {\n");

  const std::vector<int> all_bits{8, 16};
  for (std::size_t bi = 0; bi < all_bits.size(); ++bi) {
    const ppg::MultiplierSpec spec{all_bits[bi], ppg::PpgKind::kAnd, false};
    const std::vector<double> targets = synth::default_targets(spec);
    const auto pool = unique_pool(spec, designs);

    // Bit-exactness gate: one full batched pass vs the single path.
    bool identical = true;
    {
      synth::EvaluatorOptions bopts;
      bopts.batch = 16;
      synth::DesignEvaluator batched(spec, targets, bopts);
      synth::EvaluatorOptions sopts;
      sopts.batch = 1;
      synth::DesignEvaluator single(spec, targets, sopts);
      const auto bres = batched.evaluate_batch(pool);
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const auto sres = single.evaluate(pool[i]);
        if (bres[i].per_target.size() != sres.per_target.size()) {
          identical = false;
          continue;
        }
        for (std::size_t t = 0; t < sres.per_target.size(); ++t) {
          if (!same_result(bres[i].per_target[t], sres.per_target[t])) {
            identical = false;
          }
        }
      }
    }

    std::printf("    \"%dbit\": {\n", spec.bits);
    std::printf("      \"designs\": %zu,\n", pool.size());
    std::printf("      \"bit_identical\": %s,\n", identical ? "true" : "false");
    double base_rate = 0.0;
    for (std::size_t k = 0; k < batches.size(); ++k) {
      const int batch = batches[k];
      const double wall = time_pool(spec, targets, pool, batch, reps);
      const std::size_t done =
          (pool.size() / static_cast<std::size_t>(batch)) *
          static_cast<std::size_t>(batch);
      const double rate = wall > 0.0 ? static_cast<double>(done) / wall : 0.0;
      if (batch == 1) base_rate = rate;
      std::printf("      \"batch%d\": { \"wall_s\": %.4f, "
                  "\"designs_per_s\": %.1f, \"speedup_vs_batch1\": %.2f }%s\n",
                  batch, wall, rate,
                  base_rate > 0.0 ? rate / base_rate : 0.0,
                  k + 1 < batches.size() ? "," : "");
    }
    std::printf("    }%s\n", bi + 1 < all_bits.size() ? "," : "");
  }
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
