// Fig 11 reproduction: Pareto frontiers for merged MACs (8/16-bit) and
// for PE arrays implemented with those MACs.

#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();

  for (int bits : {8, 16}) {
    const ppg::MultiplierSpec spec{bits, ppg::PpgKind::kAnd, true};
    bench::print_header("Fig 11: MAC frontier, " + bench::spec_name(spec));
    const auto methods = bench::run_all_methods(spec, cfg);
    for (const auto& mf : methods) {
      bench::print_frontier(mf.name, mf.front);
    }
    bench::plot_frontiers(methods);
    bench::dump_frontiers_csv("fig11_" + bench::spec_slug(spec) + ".csv",
                              methods);

    bench::print_header("Fig 11: PE-array (MAC) frontier, " +
                        bench::spec_name(spec));
    auto sweep = bench::delay_sweep(spec, cfg.sweep_points);
    for (double& t : sweep) t *= 1.4;
    const auto pe_methods = bench::to_pe_frontiers(spec, methods, sweep);
    for (const auto& mf : pe_methods) {
      bench::print_frontier(mf.name, mf.front);
    }
    bench::plot_frontiers(pe_methods);
    bench::dump_frontiers_csv(
        "fig11_pe_" + bench::spec_slug(spec) + ".csv", pe_methods);
  }
  return 0;
}
