// Micro-benchmarks (google-benchmark) for the substrate hot paths: the
// synthesis loop that the RL reward calls thousands of times, the STA
// sweep, the logic simulator, and the agent network forward/backward.

#include <benchmark/benchmark.h>

#include "netlist/cell_library.hpp"
#include "nn/optim.hpp"
#include "nn/resnet.hpp"
#include "ppg/ppg.hpp"
#include "rl/env.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "synth/synth.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlmul;

void BM_BuildMultiplier(benchmark::State& state) {
  const ppg::MultiplierSpec spec{static_cast<int>(state.range(0)),
                                 ppg::PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  for (auto _ : state) {
    auto nl = ppg::build_multiplier(spec, tree,
                                    netlist::CpaKind::kRippleCarry);
    benchmark::DoNotOptimize(nl.num_gates());
  }
}
BENCHMARK(BM_BuildMultiplier)->Arg(8)->Arg(16);

void BM_Sta(benchmark::State& state) {
  const ppg::MultiplierSpec spec{static_cast<int>(state.range(0)),
                                 ppg::PpgKind::kAnd, false};
  const auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                        netlist::CpaKind::kRippleCarry);
  const auto& lib = netlist::CellLibrary::nangate45();
  for (auto _ : state) {
    const auto rep = sta::analyze(nl, lib);
    benchmark::DoNotOptimize(rep.critical_ps);
  }
}
BENCHMARK(BM_Sta)->Arg(8)->Arg(16);

void BM_SynthesizeDesign(benchmark::State& state) {
  const ppg::MultiplierSpec spec{static_cast<int>(state.range(0)),
                                 ppg::PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  for (auto _ : state) {
    const auto res = synth::synthesize_design(spec, tree, 0.8);
    benchmark::DoNotOptimize(res.area_um2);
  }
}
BENCHMARK(BM_SynthesizeDesign)->Arg(8)->Arg(16);

void BM_Simulate64Vectors(benchmark::State& state) {
  const ppg::MultiplierSpec spec{static_cast<int>(state.range(0)),
                                 ppg::PpgKind::kAnd, false};
  const auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                        netlist::CpaKind::kRippleCarry);
  sim::Simulator simulator(nl);
  util::Rng rng(1);
  for (auto _ : state) {
    for (int i = 0; i < simulator.num_inputs(); ++i) {
      simulator.set_input(i, rng.next());
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.output(0));
  }
}
BENCHMARK(BM_Simulate64Vectors)->Arg(8)->Arg(16);

void BM_EncodeState(benchmark::State& state) {
  const ppg::MultiplierSpec spec{16, ppg::PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  for (auto _ : state) {
    const auto t = rl::encode_tree(tree, 8);
    benchmark::DoNotOptimize(t.numel());
  }
}
BENCHMARK(BM_EncodeState);

void BM_TinyNetForwardBackward(benchmark::State& state) {
  util::Rng rng(1);
  nn::ResNet net(nn::resnet_tiny_config(2, 64), rng);
  net.set_training(true);
  const nt::Tensor x = nt::Tensor::randn({8, 2, 16, 8}, rng, 1.0f);
  for (auto _ : state) {
    net.zero_grad();
    const nt::Tensor y = net.forward(x);
    nt::Tensor grad(y.shape());
    grad.fill(1.0f / static_cast<float>(y.numel()));
    benchmark::DoNotOptimize(net.backward(grad).numel());
  }
}
BENCHMARK(BM_TinyNetForwardBackward);

void BM_Resnet18Forward(benchmark::State& state) {
  util::Rng rng(1);
  nn::ResNet net(nn::resnet18_config(2, 64), rng);
  net.set_training(false);
  const nt::Tensor x = nt::Tensor::randn({1, 2, 16, 16}, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x).numel());
  }
}
BENCHMARK(BM_Resnet18Forward);

}  // namespace

BENCHMARK_MAIN();
