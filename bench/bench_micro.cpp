// Micro-benchmarks (google-benchmark) for the substrate hot paths: the
// synthesis loop that the RL reward calls thousands of times, the STA
// sweep, the logic simulator, and the agent network forward/backward.
//
// Exits by printing one `RLMUL_COUNTERS key=value ...` line (where the
// synthesis calls went: netlist reuse, incremental vs full STA, cache
// hits) — the contract tests/smoke_bench_micro.sh checks in CI.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"

#include "netlist/cell_library.hpp"
#include "nn/layers.hpp"
#include "nn/optim.hpp"
#include "nn/resnet.hpp"
#include "nt/gemm.hpp"
#include "ppg/ppg.hpp"
#include "rl/env.hpp"
#include "rl/env_pool.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "synth/evaluator.hpp"
#include "synth/synth.hpp"
#include "util/build_info.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlmul;

void BM_BuildMultiplier(benchmark::State& state) {
  const ppg::MultiplierSpec spec{static_cast<int>(state.range(0)),
                                 ppg::PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  for (auto _ : state) {
    auto nl = ppg::build_multiplier(spec, tree,
                                    netlist::CpaKind::kRippleCarry);
    benchmark::DoNotOptimize(nl.num_gates());
  }
}
BENCHMARK(BM_BuildMultiplier)->Arg(8)->Arg(16);

void BM_Sta(benchmark::State& state) {
  const ppg::MultiplierSpec spec{static_cast<int>(state.range(0)),
                                 ppg::PpgKind::kAnd, false};
  const auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                        netlist::CpaKind::kRippleCarry);
  const auto& lib = netlist::CellLibrary::nangate45();
  for (auto _ : state) {
    const auto rep = sta::analyze(nl, lib);
    benchmark::DoNotOptimize(rep.critical_ps);
  }
}
BENCHMARK(BM_Sta)->Arg(8)->Arg(16);

void BM_SynthesizeDesign(benchmark::State& state) {
  const ppg::MultiplierSpec spec{static_cast<int>(state.range(0)),
                                 ppg::PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  for (auto _ : state) {
    const auto res = synth::synthesize_design(spec, tree, 0.8);
    benchmark::DoNotOptimize(res.area_um2);
  }
}
BENCHMARK(BM_SynthesizeDesign)->Arg(8)->Arg(16);

void BM_Simulate64Vectors(benchmark::State& state) {
  const ppg::MultiplierSpec spec{static_cast<int>(state.range(0)),
                                 ppg::PpgKind::kAnd, false};
  const auto nl = ppg::build_multiplier(spec, ppg::initial_tree(spec),
                                        netlist::CpaKind::kRippleCarry);
  sim::Simulator simulator(nl);
  util::Rng rng(1);
  for (auto _ : state) {
    for (int i = 0; i < simulator.num_inputs(); ++i) {
      simulator.set_input(i, rng.next());
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.output(0));
  }
}
BENCHMARK(BM_Simulate64Vectors)->Arg(8)->Arg(16);

// The reward-oracle hot loop: evaluating a never-seen-before design
// under the full multi-constraint target set. Arg0 = operand bits,
// Arg1 = 1 for the prepared/incremental fast path, 0 for the legacy
// rebuild-everything pipeline (the A/B the ISSUE's 3x target is
// measured on).
void BM_EvaluateUniqueDesign(benchmark::State& state) {
  const ppg::MultiplierSpec spec{static_cast<int>(state.range(0)),
                                 ppg::PpgKind::kAnd, false};
  synth::EvaluatorOptions eopts;
  eopts.fast_path = state.range(1) != 0;
  // Fixed targets so both modes do identical work and no time is
  // spent probing the delay range inside the measurement.
  const std::vector<double> targets = synth::default_targets(spec);
  // Pool of unique random-walk trees (deduped by canonical key); the
  // evaluator is rebuilt — outside the timing — when the pool wraps so
  // every timed evaluate() is a cache miss on a unique design.
  auto pool = bench::random_trees(spec, 48, 6, 42);
  {
    std::set<std::string> seen{ppg::initial_tree(spec).key()};
    std::vector<ct::CompressorTree> unique;
    for (auto& t : pool) {
      if (seen.insert(t.key()).second) unique.push_back(std::move(t));
    }
    pool = std::move(unique);
  }
  auto evaluator =
      std::make_unique<synth::DesignEvaluator>(spec, targets, eopts);
  std::size_t next = 0;
  for (auto _ : state) {
    if (next == pool.size()) {
      state.PauseTiming();
      evaluator =
          std::make_unique<synth::DesignEvaluator>(spec, targets, eopts);
      next = 0;
      state.ResumeTiming();
    }
    const auto eval = evaluator->evaluate(pool[next++]);
    benchmark::DoNotOptimize(eval.sum_area);
  }
}
BENCHMARK(BM_EvaluateUniqueDesign)
    ->ArgNames({"bits", "fast"})
    ->Args({8, 1})
    ->Args({8, 0})
    ->Args({16, 1})
    ->Args({16, 0})
    ->Unit(benchmark::kMillisecond);

// Batched SoA evaluation throughput (the ISSUE's >= 3x target at
// batch >= 8, 16-bit). Arg0 = operand bits, Arg1 = batch size K: every
// iteration evaluates K never-seen-before designs, through one
// evaluate_batch() call for K > 1 or the per-call single path for
// K == 1 (EvaluatorOptions::batch = 1 disables coalescing entirely, so
// that lane is the legacy baseline the ratio is measured against).
// items_per_second therefore reads as unique designs per second.
void BM_EvaluateBatch(benchmark::State& state) {
  const ppg::MultiplierSpec spec{static_cast<int>(state.range(0)),
                                 ppg::PpgKind::kAnd, false};
  const int batch = static_cast<int>(state.range(1));
  synth::EvaluatorOptions eopts;
  eopts.batch = batch;
  const std::vector<double> targets = synth::default_targets(spec);
  // Unique random-walk trees; the evaluator is rebuilt — outside the
  // timing — when the pool wraps so every timed design is a cache miss.
  auto pool = bench::random_trees(spec, 160, 6, 43);
  {
    std::set<std::string> seen{ppg::initial_tree(spec).key()};
    std::vector<ct::CompressorTree> unique;
    for (auto& t : pool) {
      if (seen.insert(t.key()).second) unique.push_back(std::move(t));
    }
    pool = std::move(unique);
  }
  const std::size_t k = static_cast<std::size_t>(batch);
  auto evaluator =
      std::make_unique<synth::DesignEvaluator>(spec, targets, eopts);
  std::size_t next = 0;
  for (auto _ : state) {
    if (next + k > pool.size()) {
      state.PauseTiming();
      evaluator =
          std::make_unique<synth::DesignEvaluator>(spec, targets, eopts);
      next = 0;
      state.ResumeTiming();
    }
    if (batch > 1) {
      const std::vector<ct::CompressorTree> group(
          pool.begin() + static_cast<std::ptrdiff_t>(next),
          pool.begin() + static_cast<std::ptrdiff_t>(next + k));
      const auto evals = evaluator->evaluate_batch(group);
      benchmark::DoNotOptimize(evals.back().sum_area);
    } else {
      const auto eval = evaluator->evaluate(pool[next]);
      benchmark::DoNotOptimize(eval.sum_area);
    }
    next += k;
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EvaluateBatch)
    ->ArgNames({"bits", "batch"})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({8, 8})
    ->Args({8, 16})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Args({16, 16})
    // The single path fans per-target synthesis out to the shared
    // pool, so the meaningful rate (and the 3x ratio) is wall-clock.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Trajectory-shaped evaluation through the delta path: every timed
// evaluate() is a never-seen-before child hinted with its pre-move
// parent — the shape rl::MultiplierEnv::step and the SA chain emit.
// Arg0 = operand bits, Arg1 = 1 for RLMUL_DELTA_EVAL=1
// (parent-relative netlist patch + STA warm-start), 0 for the
// from-scratch pipeline (the A/B the ISSUE's >= 1.5x trajectory target
// is measured on; bit-identity is enforced by tests/test_delta_eval.cpp
// and bench_delta).
void BM_EvaluateDelta(benchmark::State& state) {
  const ppg::MultiplierSpec spec{static_cast<int>(state.range(0)),
                                 ppg::PpgKind::kAnd, false};
  const bool delta_on = state.range(1) != 0;
  const std::vector<double> targets = synth::default_targets(spec);
  // Random-walk chain: step i's tree is one legal action off step
  // i-1's, so each evaluation hints the previous design as its parent.
  struct TrajStep {
    ct::CompressorTree tree;
    std::string parent_key;
  };
  std::vector<TrajStep> chain;
  {
    util::Rng rng(77);
    std::set<std::string> seen{ppg::initial_tree(spec).key()};
    ct::CompressorTree cur = ppg::initial_tree(spec);
    while (chain.size() < 64) {
      const auto mask = ct::legal_action_mask(cur);
      std::vector<int> legal;
      for (int k = 0; k < static_cast<int>(mask.size()); ++k) {
        if (mask[k]) legal.push_back(k);
      }
      if (legal.empty()) break;
      ct::CompressorTree child = ct::apply_action(
          cur, ct::action_from_index(legal[rng.next() % legal.size()]));
      if (seen.insert(child.key()).second) {
        chain.push_back({child, cur.key()});
      }
      cur = std::move(child);
    }
  }
  // The evaluator resolves the delta switch at construction; restore
  // the inherited setting after the run so A/B pairs share a process.
  setenv("RLMUL_DELTA_EVAL", delta_on ? "1" : "0", 1);
  synth::EvaluatorOptions eopts;
  eopts.batch = 1;  // hints act on the per-call path only
  auto evaluator =
      std::make_unique<synth::DesignEvaluator>(spec, targets, eopts);
  std::size_t next = 0;
  for (auto _ : state) {
    if (next == chain.size()) {
      state.PauseTiming();
      evaluator =
          std::make_unique<synth::DesignEvaluator>(spec, targets, eopts);
      next = 0;
      state.ResumeTiming();
    }
    const auto eval = evaluator->evaluate(
        chain[next].tree, synth::ParentHint{chain[next].parent_key});
    benchmark::DoNotOptimize(eval.sum_area);
    ++next;
  }
  unsetenv("RLMUL_DELTA_EVAL");
}
BENCHMARK(BM_EvaluateDelta)
    ->ArgNames({"bits", "delta"})
    ->Args({16, 1})
    ->Args({16, 0})
    ->Unit(benchmark::kMillisecond);

// One parallel environment step dispatched through the persistent
// rl::EnvPool workers (pool=1) versus the per-step std::thread
// spawn/join the A2C trainer historically paid on every rollout step
// (pool=0). The envs alternate a cached step with a reset, so after
// the first lap synthesis is free and the measurement isolates the
// dispatch overhead the pool removes.
void BM_ParallelEnvStep(benchmark::State& state) {
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  const int workers = static_cast<int>(state.range(0));
  const bool pooled = state.range(1) != 0;
  synth::DesignEvaluator evaluator(spec);
  rl::EnvPool pool(evaluator, rl::EnvConfig{}, workers);
  // Every env always steps the same legal action from the initial
  // state, so each evaluate() is a cache hit after the first lap.
  std::vector<int> actions(static_cast<std::size_t>(workers));
  {
    const auto mask = pool.env(0).mask();
    int first = 0;
    while (mask[static_cast<std::size_t>(first)] == 0) ++first;
    for (auto& a : actions) a = first;
  }
  const std::vector<int> resets(static_cast<std::size_t>(workers), -1);
  bool do_reset = false;
  for (auto _ : state) {
    const auto& acts = do_reset ? resets : actions;
    if (pooled) {
      benchmark::DoNotOptimize(pool.step_all(acts).size());
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(workers));
      for (int i = 0; i < workers; ++i) {
        threads.emplace_back([&acts, &pool, i] {
          const int a = acts[static_cast<std::size_t>(i)];
          if (a < 0) {
            pool.env(i).reset();
          } else {
            pool.env(i).step(a);
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    do_reset = !do_reset;
  }
}
BENCHMARK(BM_ParallelEnvStep)
    ->ArgNames({"envs", "pool"})
    ->Args({4, 1})
    ->Args({4, 0})
    ->Args({8, 1})
    ->Args({8, 0})
    ->Unit(benchmark::kMicrosecond);

void BM_EncodeState(benchmark::State& state) {
  const ppg::MultiplierSpec spec{16, ppg::PpgKind::kAnd, false};
  const auto tree = ppg::initial_tree(spec);
  for (auto _ : state) {
    const auto t = rl::encode_tree(tree, 8);
    benchmark::DoNotOptimize(t.numel());
  }
}
BENCHMARK(BM_EncodeState);

// Pins nt::sgemm to blocked or naive for one benchmark's scope and
// restores whatever RLMUL_GEMM selected afterwards, so A/B pairs can
// run in a single process.
class GemmModeGuard {
 public:
  explicit GemmModeGuard(bool blocked) : saved_(nt::gemm_mode()) {
    nt::set_gemm_mode(blocked ? nt::GemmMode::kBlocked
                              : nt::GemmMode::kNaive);
  }
  ~GemmModeGuard() { nt::set_gemm_mode(saved_); }

 private:
  nt::GemmMode saved_;
};

// Raw kernel throughput on the conv-forward shape class (C = A·Bᵀ).
void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const GemmModeGuard guard(state.range(1) != 0);
  util::Rng rng(1);
  const nt::Tensor a = nt::Tensor::randn({n, n}, rng, 1.0f);
  const nt::Tensor b = nt::Tensor::randn({n, n}, rng, 1.0f);
  nt::Tensor c({n, n});
  for (auto _ : state) {
    nt::sgemm(false, true, n, n, n, a.data(), n, 0, b.data(), n, 0, c.data(),
              n, 0, 1, false, nullptr, nt::BiasKind::kNone);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<int64_t>(n) *
                          n * n);
}
BENCHMARK(BM_Gemm)
    ->ArgNames({"n", "blocked"})
    ->Args({128, 1})
    ->Args({128, 0})
    ->Args({256, 1})
    ->Args({256, 0});

// A mid-network residual conv: 64 -> 64 channels, 3x3, on the spatial
// extent the 8-bit multiplier encoding produces.
void BM_Conv2dFwd(benchmark::State& state) {
  const GemmModeGuard guard(state.range(0) != 0);
  util::Rng rng(1);
  nn::Conv2d conv(64, 64, 3, 1, 1, rng, /*bias=*/false);
  const nt::Tensor x = nt::Tensor::randn({8, 64, 16, 8}, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x).numel());
  }
}
BENCHMARK(BM_Conv2dFwd)->ArgNames({"blocked"})->Args({1})->Args({0});

void BM_Conv2dBwd(benchmark::State& state) {
  const GemmModeGuard guard(state.range(0) != 0);
  util::Rng rng(1);
  nn::Conv2d conv(64, 64, 3, 1, 1, rng, /*bias=*/false);
  const nt::Tensor x = nt::Tensor::randn({8, 64, 16, 8}, rng, 1.0f);
  const nt::Tensor y = conv.forward(x);  // backward reuses its im2col
  nt::Tensor grad(y.shape());
  grad.fill(1.0f / static_cast<float>(y.numel()));
  for (auto _ : state) {
    conv.zero_grad();
    benchmark::DoNotOptimize(conv.backward(grad).numel());
  }
}
BENCHMARK(BM_Conv2dBwd)->ArgNames({"blocked"})->Args({1})->Args({0});

// One full training step (zero_grad + forward + backward) of the
// paper-sized ResNet-18 over the 16-bit multiplier encoding
// (3 channels x 32 columns x 8 stages), batch 32 — the ISSUE's >= 4x
// blocked-vs-naive acceptance target is measured on this entry.
void BM_ResNet18Step(benchmark::State& state) {
  const GemmModeGuard guard(state.range(0) != 0);
  util::Rng rng(1);
  nn::ResNet net(nn::resnet18_config(rl::kStateChannels, 128), rng);
  net.set_training(true);
  const nt::Tensor x =
      nt::Tensor::randn({32, rl::kStateChannels, 32, 8}, rng, 1.0f);
  for (auto _ : state) {
    net.zero_grad();
    const nt::Tensor y = net.forward(x);
    nt::Tensor grad(y.shape());
    grad.fill(1.0f / static_cast<float>(y.numel()));
    benchmark::DoNotOptimize(net.backward(grad).numel());
  }
}
BENCHMARK(BM_ResNet18Step)
    ->ArgNames({"blocked"})
    ->Args({1})
    ->Args({0})
    ->Unit(benchmark::kMillisecond);

void BM_TinyNetForwardBackward(benchmark::State& state) {
  util::Rng rng(1);
  nn::ResNet net(nn::resnet_tiny_config(2, 64), rng);
  net.set_training(true);
  const nt::Tensor x = nt::Tensor::randn({8, 2, 16, 8}, rng, 1.0f);
  for (auto _ : state) {
    net.zero_grad();
    const nt::Tensor y = net.forward(x);
    nt::Tensor grad(y.shape());
    grad.fill(1.0f / static_cast<float>(y.numel()));
    benchmark::DoNotOptimize(net.backward(grad).numel());
  }
}
BENCHMARK(BM_TinyNetForwardBackward);

void BM_Resnet18Forward(benchmark::State& state) {
  util::Rng rng(1);
  nn::ResNet net(nn::resnet18_config(2, 64), rng);
  net.set_training(false);
  const nt::Tensor x = nt::Tensor::randn({1, 2, 16, 16}, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x).numel());
  }
}
BENCHMARK(BM_Resnet18Forward);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Machine-readable throughput counters; the CI smoke test parses
  // this line, so keep the `RLMUL_COUNTERS ` prefix stable. The
  // RLMUL_BUILD line records which build (compiler/sanitizers/TSA)
  // produced the numbers.
  std::printf("RLMUL_BUILD %s\n", rlmul::util::build_info().c_str());
  std::printf("RLMUL_COUNTERS %s\n",
              rlmul::util::format_perf_counters().c_str());
  return 0;
}
