// Fig 12 reproduction: optimization trajectories (mean +- std over
// seeds) of the current-state PPA cost for SA, RL-MUL (DQN) and
// RL-MUL-E (A2C), on three workload groups: AND multiplier, MBE
// multiplier, merged MAC. Paper shape: the RL methods sit below SA,
// and RL-MUL-E is the most stable.

#include <cstdio>
#include <vector>

#include "baselines/sa.hpp"
#include "bench/harness.hpp"
#include "rl/a2c.hpp"
#include "rl/dqn.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

using rlmul::bench::Config;
using rlmul::ppg::MultiplierSpec;

struct Series {
  std::string name;
  std::vector<std::vector<double>> runs;  ///< per-seed cost trajectories
};

void print_series(const Series& s, int points) {
  std::size_t len = 0;
  for (const auto& r : s.runs) len = std::max(len, r.size());
  if (len == 0) return;
  std::printf("%-9s:", s.name.c_str());
  for (int p = 0; p < points; ++p) {
    const std::size_t idx =
        std::min(len - 1, len * static_cast<std::size_t>(p + 1) /
                              static_cast<std::size_t>(points));
    std::vector<double> vals;
    for (const auto& r : s.runs) {
      vals.push_back(r[std::min(idx, r.size() - 1)]);
    }
    std::printf(" %.3f+-%.3f", rlmul::util::mean(vals),
                rlmul::util::stddev(vals));
  }
  std::printf("\n");
}

void run_group(const MultiplierSpec& spec, const Config& cfg) {
  rlmul::bench::print_header("Fig 12: trajectories, " +
                             rlmul::bench::spec_name(spec));
  Series sa{"SA", {}};
  Series dqn{"RL-MUL", {}};
  Series a2c{"RL-MUL-E", {}};
  Series sa_cur{"SA", {}};
  Series dqn_cur{"RL-MUL", {}};
  Series a2c_cur{"RL-MUL-E", {}};
  for (int seed = 0; seed < cfg.seeds; ++seed) {
    {
      rlmul::synth::DesignEvaluator ev(spec);
      rlmul::baselines::SaOptions opts;
      opts.steps = cfg.rl_steps;
      opts.seed = 1000 + static_cast<std::uint64_t>(seed);
      const auto res = rlmul::baselines::simulated_annealing(ev, opts);
      sa.runs.push_back(res.best_trajectory);
      sa_cur.runs.push_back(res.trajectory);
    }
    {
      rlmul::synth::DesignEvaluator ev(spec);
      rlmul::rl::DqnOptions opts;
      opts.steps = cfg.rl_steps;
      opts.warmup = std::max(8, cfg.rl_steps / 8);
      opts.seed = 2000 + static_cast<std::uint64_t>(seed);
      const auto res = rlmul::rl::train_dqn(ev, opts);
      dqn.runs.push_back(res.best_trajectory);
      dqn_cur.runs.push_back(res.trajectory);
    }
    {
      rlmul::synth::DesignEvaluator ev(spec);
      rlmul::rl::A2cOptions opts;
      // Equal wall time: same per-thread step count as the others.
      opts.steps = cfg.rl_steps;
      opts.num_threads = cfg.threads;
      opts.seed = 3000 + static_cast<std::uint64_t>(seed);
      const auto res = rlmul::rl::train_a2c(ev, opts);
      a2c.runs.push_back(res.best_trajectory);
      a2c_cur.runs.push_back(res.trajectory);
    }
  }
  std::printf("best-so-far cost (mean +- std across %d seeds) at 8 "
              "checkpoints; initial Wallace cost = 2.000\n",
              cfg.seeds);
  print_series(sa, 8);
  print_series(dqn, 8);
  print_series(a2c, 8);
  std::printf("current-state cost (the exploration signature; RL agents "
              "keep sampling, SA anneals toward exploitation):\n");
  print_series(sa_cur, 8);
  print_series(dqn_cur, 8);
  print_series(a2c_cur, 8);

  // Machine-readable copy: one row per (method, seed, step).
  rlmul::util::CsvWriter csv(rlmul::util::output_dir() + "fig12_" +
                             rlmul::bench::spec_slug(spec) + ".csv");
  csv.row({"method", "seed", "step", "cost"});
  for (const Series* s : {&sa, &dqn, &a2c}) {
    for (std::size_t seed = 0; seed < s->runs.size(); ++seed) {
      for (std::size_t step = 0; step < s->runs[seed].size(); ++step) {
        csv.begin_row()
            .add(s->name)
            .add(static_cast<int>(seed))
            .add(static_cast<int>(step))
            .add(s->runs[seed][step]);
      }
    }
  }
}

}  // namespace

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();
  run_group({8, ppg::PpgKind::kAnd, false}, cfg);
  run_group({8, ppg::PpgKind::kBooth, false}, cfg);
  run_group({8, ppg::PpgKind::kAnd, true}, cfg);
  return 0;
}
