// Fig 14 reproduction: hypervolume comparison of the per-method Pareto
// frontiers for (a) multipliers, (b) multiplier-implemented PE arrays,
// (c) MACs and MAC-implemented PE arrays. Paper shape: RL-MUL >> GOMIL
// (tens of percent), RL-MUL-E >= RL-MUL by a few percent.

#include <cstdio>

#include "bench/harness.hpp"

namespace {

void print_hv(const std::vector<rlmul::bench::MethodFrontier>& methods) {
  const auto hv = rlmul::bench::hypervolumes(methods);
  double gomil_hv = 1.0;
  double rl_hv = 1.0;
  for (std::size_t i = 0; i < methods.size(); ++i) {
    if (methods[i].name == "GOMIL") gomil_hv = hv[i];
    if (methods[i].name == "RL-MUL") rl_hv = hv[i];
  }
  for (std::size_t i = 0; i < methods.size(); ++i) {
    std::printf("  %-9s HV=%-12.4g vsGOMIL=%+6.1f%% vsRL-MUL=%+6.1f%%\n",
                methods[i].name.c_str(), hv[i],
                100.0 * (hv[i] / gomil_hv - 1.0),
                100.0 * (hv[i] / rl_hv - 1.0));
  }
}

}  // namespace

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();

  // (a) multipliers + (b) PE arrays (multiplier).
  for (int bits : {8, 16}) {
    const ppg::MultiplierSpec spec{bits, ppg::PpgKind::kAnd, false};
    bench::print_header("Fig 14(a): multiplier hypervolume, " +
                        bench::spec_name(spec));
    const auto methods = bench::run_all_methods(spec, cfg);
    print_hv(methods);

    bench::print_header("Fig 14(b): PE-array hypervolume, " +
                        bench::spec_name(spec));
    auto sweep = bench::delay_sweep(spec, cfg.sweep_points);
    for (double& t : sweep) t *= 1.4;
    print_hv(bench::to_pe_frontiers(spec, methods, sweep));
  }

  // (c) MACs + PE arrays (MAC).
  for (int bits : {8, 16}) {
    const ppg::MultiplierSpec spec{bits, ppg::PpgKind::kAnd, true};
    bench::print_header("Fig 14(c): MAC hypervolume, " +
                        bench::spec_name(spec));
    const auto methods = bench::run_all_methods(spec, cfg);
    print_hv(methods);

    bench::print_header("Fig 14(c): PE-array (MAC) hypervolume, " +
                        bench::spec_name(spec));
    auto sweep = bench::delay_sweep(spec, cfg.sweep_points);
    for (double& t : sweep) t *= 1.4;
    print_hv(bench::to_pe_frontiers(spec, methods, sweep));
  }
  return 0;
}
