// Table I reproduction: multiplier area/timing under three preferences
// (min-area, min-delay, balanced trade-off) for all five methods and
// the four configurations (8/16-bit x AND/MBE). Bold-equivalent check:
// the RL rows should dominate or match the baselines per column.

#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();

  for (int bits : {8, 16}) {
    for (const auto ppg_kind : {ppg::PpgKind::kAnd, ppg::PpgKind::kBooth}) {
      const ppg::MultiplierSpec spec{bits, ppg_kind, false};
      bench::print_header("Table I: " + bench::spec_name(spec));
      const auto methods = bench::run_all_methods(spec, cfg);

      std::printf("%-11s %-9s %-11s %-10s\n", "Preference", "Method",
                  "Area(um2)", "Delay(ns)");
      struct Pref {
        const char* name;
        bench::Selection (*pick)(const pareto::Front&);
      };
      const Pref prefs[] = {
          {"Area", bench::min_area_point},
          {"Timing", bench::min_delay_point},
          {"Trade-off", bench::tradeoff_point},
      };
      for (const Pref& pref : prefs) {
        for (const auto& mf : methods) {
          const auto sel = pref.pick(mf.front);
          std::printf("%-11s %-9s %-11.1f %-10.4f\n", pref.name,
                      mf.name.c_str(), sel.area, sel.delay);
        }
      }
    }
  }
  return 0;
}
