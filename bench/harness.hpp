#pragma once
// Shared experiment harness for the paper-reproduction benches. Every
// bench binary regenerates one table or figure of the paper; this
// header provides the method runners (Wallace / GOMIL / SA / RL-MUL /
// RL-MUL-E), the target-delay sweeps, frontier construction for bare
// designs and PE arrays, and the row selections used by Tables I-III.
//
// Workload scaling knobs (environment):
//   RLMUL_STEPS   search budget per method        (default 100)
//                 counts search *steps*; the number of EDA calls per
//                 step varies by method (A2C consumes one per worker)
//   RLMUL_EDA_BUDGET  cap on *unique synthesis evaluations* per
//                 weight-config run (default 0 = unlimited). Unlike
//                 RLMUL_STEPS this bounds actual EDA-tool work: cached
//                 re-evaluations are free, and the driver stops a
//                 method before the step that could overrun the cap.
//   RLMUL_THREADS A2C workers                     (default 4)
//   RLMUL_SEEDS   seeds for trajectory statistics (default 3)
//   RLMUL_SWEEP   target delays in final sweeps   (default 6)
//   RLMUL_SAMPLES random designs for Fig 7/8      (default 60)
//   RLMUL_QUICK   1 = CI-size (everything / 8)

#include <cstddef>
#include <string>
#include <vector>

#include "ct/compressor_tree.hpp"
#include "pareto/pareto.hpp"
#include "pe/pe_array.hpp"
#include "ppg/ppg.hpp"
#include "synth/evaluator.hpp"

namespace rlmul::bench {

struct Config {
  int rl_steps = 100;
  int threads = 4;
  int seeds = 3;
  int sweep_points = 6;
  int samples = 60;
  /// Unique-synthesis-evaluation cap per weight-config run; 0 = off.
  std::size_t eda_budget = 0;
};

/// Reads the RLMUL_* environment knobs.
Config config();

/// Target delays spanning the spec's achievable range (tight KS to
/// relaxed ripple), mimicking the paper's 0.05-1.2 ns synthesis sweep.
std::vector<double> delay_sweep(const ppg::MultiplierSpec& spec, int n);

/// Synthesizes every candidate tree at every sweep target; returns the
/// non-dominated (area, delay) set. Payload = candidate index.
pareto::Front design_frontier(const ppg::MultiplierSpec& spec,
                              const std::vector<ct::CompressorTree>& trees,
                              const std::vector<double>& sweep);

/// Same, through the PE-array model (area/delay of the full array).
pareto::Front pe_frontier(const ppg::MultiplierSpec& spec,
                          const std::vector<ct::CompressorTree>& trees,
                          const std::vector<double>& sweep,
                          const pe::PeArrayOptions& opts = {});

// -- method runners ---------------------------------------------------------
// Each returns the candidate trees the method proposes (capped to the
// non-dominated visits for the search methods).

std::vector<ct::CompressorTree> wallace_candidates(
    const ppg::MultiplierSpec& spec);
std::vector<ct::CompressorTree> gomil_candidates(
    const ppg::MultiplierSpec& spec);
/// Generic runner: dispatches any registered search method by name
/// through search::Driver, sweeping the paper's three weight configs
/// and collecting the non-dominated visited designs. `eda_budget`
/// bounds unique synthesis evaluations per weight-config run (0 = off).
/// The one-shot baselines ("wallace", "gomil") return their single
/// closed-form tree.
std::vector<ct::CompressorTree> method_candidates(
    const ppg::MultiplierSpec& spec, const std::string& method, int steps,
    int threads, std::uint64_t seed, std::size_t eda_budget);
std::vector<ct::CompressorTree> sa_candidates(const ppg::MultiplierSpec& spec,
                                              int steps, std::uint64_t seed);
std::vector<ct::CompressorTree> dqn_candidates(
    const ppg::MultiplierSpec& spec, int steps, std::uint64_t seed);
std::vector<ct::CompressorTree> a2c_candidates(
    const ppg::MultiplierSpec& spec, int steps, int threads,
    std::uint64_t seed);

struct MethodFrontier {
  std::string name;
  std::vector<ct::CompressorTree> candidates;
  pareto::Front front;
};

/// Runs all five methods of the paper on a spec and synthesizes each
/// method's candidates across the sweep.
std::vector<MethodFrontier> run_all_methods(const ppg::MultiplierSpec& spec,
                                            const Config& cfg);

/// Rebuilds the per-method fronts through the PE-array model.
std::vector<MethodFrontier> to_pe_frontiers(
    const ppg::MultiplierSpec& spec, const std::vector<MethodFrontier>& in,
    const std::vector<double>& sweep, const pe::PeArrayOptions& opts = {});

// -- table selections --------------------------------------------------------

struct Selection {
  double area = 0.0;
  double delay = 0.0;
};

Selection min_area_point(const pareto::Front& front);
Selection min_delay_point(const pareto::Front& front);
/// Balanced preference: minimizes the area*delay product on the front.
Selection tradeoff_point(const pareto::Front& front);

/// Hypervolume with the reference at 1.1x the worst corner across all
/// fronts (so every front scores under the same reference).
std::vector<double> hypervolumes(const std::vector<MethodFrontier>& fronts);

// -- random design sampling (Figs 7/8) ---------------------------------------

/// Random legal trees reached by masked random walks from Wallace.
std::vector<ct::CompressorTree> random_trees(const ppg::MultiplierSpec& spec,
                                             int count, int walk_length,
                                             std::uint64_t seed);

// -- printing -----------------------------------------------------------------

void print_header(const std::string& title);
/// One `RLMUL_COUNTERS key=value ...` line with the process-wide
/// throughput counters (where the EDA budget went); also emitted at the
/// end of run_all_methods.
void print_perf_counters();
void print_frontier(const std::string& name, const pareto::Front& front);
/// ASCII chart of all method frontiers (area on x, delay on y).
void plot_frontiers(const std::vector<MethodFrontier>& methods);
/// CSV side output (method, area, delay rows) under util::output_dir().
void dump_frontiers_csv(const std::string& filename,
                        const std::vector<MethodFrontier>& methods);
std::string spec_name(const ppg::MultiplierSpec& spec);
/// spec_name with underscores, for filenames.
std::string spec_slug(const ppg::MultiplierSpec& spec);

}  // namespace rlmul::bench
