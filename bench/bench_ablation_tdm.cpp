// Ablation: TDM-style slack-aware signal ordering inside the
// compressor tree (the classic three-dimensional method the paper
// cites as related work [13-15]). Same compressor matrix, different
// pin assignment: measures the delay gain at zero area cost.

#include <cstdio>

#include "bench/harness.hpp"
#include "netlist/cell_library.hpp"
#include "sta/sta.hpp"

int main() {
  using namespace rlmul;
  const auto& lib = netlist::CellLibrary::nangate45();

  std::printf("=== Ablation: TDM signal ordering (same matrix, reordered "
              "pins) ===\n");
  std::printf("%-28s %-12s %-12s %-8s\n", "design", "fifo (ps)", "tdm (ps)",
              "gain");
  for (int bits : {8, 16}) {
    for (const auto ppg_kind : {ppg::PpgKind::kAnd, ppg::PpgKind::kBooth}) {
      const ppg::MultiplierSpec spec{bits, ppg_kind, false};
      for (const auto& [tree_name, tree] :
           {std::pair<const char*, ct::CompressorTree>{
                "wallace", ppg::initial_tree(spec)},
            {"dadda", ct::dadda_tree(ppg::pp_heights(spec))}}) {
        netlist::CtBuildOptions tdm;
        tdm.tdm_ordering = true;
        const auto plain = ppg::build_multiplier(
            spec, tree, netlist::CpaKind::kKoggeStone);
        const auto ordered = ppg::build_multiplier(
            spec, tree, netlist::CpaKind::kKoggeStone, tdm);
        const double d0 = sta::analyze(plain, lib).critical_ps;
        const double d1 = sta::analyze(ordered, lib).critical_ps;
        char name[64];
        std::snprintf(name, sizeof(name), "%d-bit %s %s", bits,
                      ppg::ppg_kind_name(ppg_kind), tree_name);
        std::printf("%-28s %-12.1f %-12.1f %+6.1f%%\n", name, d0, d1,
                    100.0 * (d1 / d0 - 1.0));
      }
    }
  }
  std::printf("expected: tdm <= fifo everywhere (free delay win)\n");
  return 0;
}
