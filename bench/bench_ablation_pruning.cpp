// Ablation: stage-count search-space pruning (Section IV-C) on vs off.
// Pruning keeps the agent away from deep (slow, large) trees; expected
// effect: visited states have bounded stage count and the average cost
// trajectory is no worse.

#include <cstdio>

#include "bench/harness.hpp"
#include "rl/dqn.hpp"
#include "util/stats.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  bench::print_header("Ablation: stage pruning, " + bench::spec_name(spec));

  const int wallace_stages = ct::stage_count(ppg::initial_tree(spec));
  struct Variant {
    const char* name;
    int max_stages;
  };
  const Variant variants[] = {
      {"pruned", wallace_stages + 1},
      {"unpruned", 1000},
  };

  for (const Variant& v : variants) {
    synth::DesignEvaluator ev(spec);
    rl::DqnOptions opts;
    opts.steps = cfg.rl_steps;
    opts.warmup = std::max(8, cfg.rl_steps / 8);
    opts.max_stages = v.max_stages;
    opts.seed = 505;
    const auto res = rl::train_dqn(ev, opts);

    // Stage statistics over every design the run evaluated.
    std::vector<double> stages;
    for (std::size_t i = 0; i < ev.num_designs(); ++i) {
      stages.push_back(ct::stage_count(ev.design(i)));
    }
    const auto box = util::box_stats(stages);
    std::printf("  %-9s best_cost=%.4f final_cost=%.4f visited=%zu "
                "stages(med/max)=%.0f/%.0f\n",
                v.name, res.best_cost,
                res.trajectory.empty() ? 0.0 : res.trajectory.back(),
                ev.num_designs(), box.median, box.max);
  }
  std::printf("expected: pruned run never visits stages beyond the bound "
              "and matches or beats the unpruned best cost\n");
  return 0;
}
