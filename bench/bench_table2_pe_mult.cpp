// Table II reproduction: 16x16 PE-array (multiplier-implemented)
// area/timing under the three preferences for all methods and the four
// multiplier configurations.

#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();

  for (int bits : {8, 16}) {
    for (const auto ppg_kind : {ppg::PpgKind::kAnd, ppg::PpgKind::kBooth}) {
      const ppg::MultiplierSpec spec{bits, ppg_kind, false};
      bench::print_header("Table II: PE array with " +
                          bench::spec_name(spec));
      const auto methods = bench::run_all_methods(spec, cfg);
      auto sweep = bench::delay_sweep(spec, cfg.sweep_points);
      for (double& t : sweep) t *= 1.4;
      const auto pe_methods = bench::to_pe_frontiers(spec, methods, sweep);

      std::printf("%-11s %-9s %-12s %-10s\n", "Preference", "Method",
                  "Area(um2)", "Delay(ns)");
      struct Pref {
        const char* name;
        bench::Selection (*pick)(const pareto::Front&);
      };
      const Pref prefs[] = {
          {"Area", bench::min_area_point},
          {"Timing", bench::min_delay_point},
          {"Trade-off", bench::tradeoff_point},
      };
      for (const Pref& pref : prefs) {
        for (const auto& mf : pe_methods) {
          const auto sel = pref.pick(mf.front);
          std::printf("%-11s %-9s %-12.0f %-10.4f\n", pref.name,
                      mf.name.c_str(), sel.area, sel.delay);
        }
      }
    }
  }
  return 0;
}
