// Ablation: the Pareto-driven multi-constraint reward (Section III-E)
// vs a single-constraint reward. With only one synthesis target the
// agent over-fits one point of the trade-off; the multi-constraint
// reward should produce a frontier with larger hypervolume.

#include <cstdio>

#include "bench/harness.hpp"
#include "rl/a2c.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  bench::print_header("Ablation: multi-constraint reward, " +
                      bench::spec_name(spec));

  const auto sweep = bench::delay_sweep(spec, cfg.sweep_points);
  const auto all_targets = synth::default_targets(spec, 4);

  struct Variant {
    const char* name;
    std::vector<double> targets;
  };
  const Variant variants[] = {
      {"single-tight", {all_targets.front()}},
      {"single-loose", {all_targets.back()}},
      {"multi(4)", all_targets},
  };

  std::vector<bench::MethodFrontier> fronts;
  for (const Variant& v : variants) {
    synth::DesignEvaluator ev(spec, v.targets);
    rl::A2cOptions opts;
    opts.steps = std::max(1, cfg.rl_steps / 2);
    opts.num_threads = cfg.threads;
    opts.seed = 404;
    const auto res = rl::train_a2c(ev, opts);

    // Final judging is identical for all variants: synthesize each
    // variant's best designs across the same sweep.
    std::vector<ct::CompressorTree> trees{res.best_tree};
    for (const auto& p : ev.frontier().sorted()) {
      const auto tree = ev.design(p.payload);
      bool dup = false;
      for (const auto& t : trees) dup |= (t == tree);
      if (!dup && trees.size() < 8) trees.push_back(tree);
    }
    bench::MethodFrontier mf;
    mf.name = v.name;
    mf.front = bench::design_frontier(spec, trees, sweep);
    fronts.push_back(std::move(mf));
  }

  const auto hv = bench::hypervolumes(fronts);
  for (std::size_t i = 0; i < fronts.size(); ++i) {
    std::printf("  %-13s HV=%.4g\n", fronts[i].name.c_str(), hv[i]);
    bench::print_frontier(fronts[i].name, fronts[i].front);
  }
  std::printf("reading: the multi-constraint reward should cover the "
              "trade-off at least as well as the single-constraint runs "
              "(at matched small budgets the gap is noisy; the paper's "
              "claim is about coverage, not a fixed margin)\n");
  return 0;
}
