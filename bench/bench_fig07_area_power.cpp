// Fig 7 reproduction: correlation between area and power over random
// compressor-tree designs (8-bit and 16-bit AND-based multipliers).
// Prints box statistics of power per area quintile, plus the Pearson
// coefficient — the paper's justification for dropping power from the
// reward (Section IV-B).

#include <algorithm>
#include <cstdio>

#include "bench/harness.hpp"
#include "synth/synth.hpp"
#include "util/stats.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();

  for (int bits : {8, 16}) {
    const ppg::MultiplierSpec spec{bits, ppg::PpgKind::kAnd, false};
    bench::print_header("Fig 7: area-power correlation, " +
                        bench::spec_name(spec));

    const auto trees =
        bench::random_trees(spec, cfg.samples, 3 * bits, 7000 + bits);
    const double target = bench::delay_sweep(spec, 3)[1];  // mid target

    std::vector<std::pair<double, double>> pts;  // (area, power)
    for (const auto& tree : trees) {
      const auto res = synth::synthesize_design(spec, tree, target);
      pts.emplace_back(res.area_um2, res.power_mw);
    }
    std::sort(pts.begin(), pts.end());

    const int bins = 5;
    std::printf("%-22s %-8s %-8s %-8s %-8s %-8s\n", "area bin (um2)", "min",
                "q1", "median", "q3", "max");
    for (int b = 0; b < bins; ++b) {
      const std::size_t lo = pts.size() * b / bins;
      const std::size_t hi = pts.size() * (b + 1) / bins;
      if (lo >= hi) continue;
      std::vector<double> powers;
      for (std::size_t i = lo; i < hi; ++i) powers.push_back(pts[i].second);
      const auto box = util::box_stats(powers);
      char label[64];
      std::snprintf(label, sizeof(label), "[%.0f, %.0f]", pts[lo].first,
                    pts[hi - 1].first);
      std::printf("%-22s %-8.3f %-8.3f %-8.3f %-8.3f %-8.3f\n", label,
                  box.min, box.q1, box.median, box.q3, box.max);
    }
    std::vector<double> areas;
    std::vector<double> powers;
    for (const auto& [a, p] : pts) {
      areas.push_back(a);
      powers.push_back(p);
    }
    std::printf("Pearson(area, power) = %.3f  (paper: strong positive "
                "correlation)\n",
                util::pearson(areas, powers));
  }
  return 0;
}
