// Cold/warm A/B for the design-space database (src/dsdb/): each method
// runs the same search twice against one --dsdb directory. The cold run
// pays for every synthesis and populates the journal; the warm run
// replays the identical trajectory served entirely from the store. The
// JSON on stdout is the source of results/BENCH_dsdb.json.
//
// Knobs: RLMUL_STEPS, RLMUL_QUICK (see harness.hpp).

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "dsdb/store.hpp"
#include "util/build_info.hpp"
#include "pareto/pareto.hpp"
#include "search/driver.hpp"
#include "search/registry.hpp"
#include "synth/evaluator.hpp"

namespace {

using namespace rlmul;

struct RunStats {
  double wall_s = 0.0;
  std::size_t unique_synth = 0;
  std::uint64_t store_hits = 0;
  double best_cost = 0.0;
};

RunStats run_once(const ppg::MultiplierSpec& spec,
                  const std::vector<double>& targets, dsdb::Store& store,
                  const std::string& method_name,
                  const search::MethodConfig& cfg) {
  const std::uint64_t hits_before = store.stats().hits;
  const auto t0 = std::chrono::steady_clock::now();

  dsdb::EvaluatorBinding binding(store, spec, targets);
  synth::EvaluatorOptions opts;
  opts.external_cache = &binding;
  synth::DesignEvaluator evaluator(spec, targets, opts);
  search::Driver driver(evaluator);
  auto method = search::make_method(method_name, cfg);
  const search::RunResult res = driver.run(*method);
  store.flush();

  RunStats out;
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  out.unique_synth = evaluator.num_unique_evaluations();
  out.store_hits = store.stats().hits - hits_before;
  out.best_cost = res.best_cost;
  return out;
}

/// Area/delay hypervolume of the records the run left in the store
/// (reference at 1.05x the worst per-target corner).
double store_hypervolume(const dsdb::Store& store) {
  pareto::Front front;
  double ref_x = 0.0;
  double ref_y = 0.0;
  for (const dsdb::Record& rec : store.all_records()) {
    for (const synth::SynthesisResult& res : rec.eval.per_target) {
      front.insert({res.area_um2, res.delay_ns});
      ref_x = std::max(ref_x, res.area_um2);
      ref_y = std::max(ref_y, res.delay_ns);
    }
  }
  if (front.size() == 0) return 0.0;
  return pareto::hypervolume(front.points(), ref_x * 1.05, ref_y * 1.05);
}

}  // namespace

int main() {
  const bench::Config bcfg = bench::config();

  ppg::MultiplierSpec spec;
  spec.bits = 8;
  spec.ppg = ppg::PpgKind::kAnd;
  const std::vector<double> targets = synth::default_targets(spec);

  search::MethodConfig cfg;
  cfg.steps = bcfg.rl_steps;
  cfg.seed = 17;

  const std::string root =
      (std::filesystem::temp_directory_path() / "rlmul_bench_dsdb").string();
  std::filesystem::remove_all(root);

  std::printf("{\n");
  std::printf(
      "  \"description\": \"dsdb cold/warm A/B: identical %d-step searches "
      "on the 8-bit AND multiplier sharing one database. Cold populates the "
      "journal, warm must serve every evaluation from the store "
      "(unique_synth 0).\",\n",
      cfg.steps);
  std::printf("  \"build\": \"%s\",\n", util::build_info().c_str());
  std::printf("  \"methods\": {\n");

  const std::vector<std::string> methods{"dqn", "sa"};
  for (std::size_t m = 0; m < methods.size(); ++m) {
    const std::string& name = methods[m];
    const std::string dir = root + "/" + name;

    dsdb::Store store(dir);
    const RunStats cold = run_once(spec, targets, store, name, cfg);
    const RunStats warm = run_once(spec, targets, store, name, cfg);
    const double hv = store_hypervolume(store);

    std::printf("    \"%s\": {\n", name.c_str());
    std::printf("      \"steps\": %d,\n", cfg.steps);
    std::printf("      \"cold_wall_s\": %.3f,\n", cold.wall_s);
    std::printf("      \"warm_wall_s\": %.3f,\n", warm.wall_s);
    std::printf("      \"speedup\": %.1f,\n",
                warm.wall_s > 0.0 ? cold.wall_s / warm.wall_s : 0.0);
    std::printf("      \"cold_unique_synth\": %zu,\n", cold.unique_synth);
    std::printf("      \"warm_unique_synth\": %zu,\n", warm.unique_synth);
    std::printf("      \"warm_store_hits\": %llu,\n",
                static_cast<unsigned long long>(warm.store_hits));
    std::printf("      \"cold_best_cost\": %.17g,\n", cold.best_cost);
    std::printf("      \"warm_best_cost\": %.17g,\n", warm.best_cost);
    std::printf("      \"store_records\": %zu,\n", store.size());
    std::printf("      \"store_hypervolume\": %.1f\n", hv);
    std::printf("    }%s\n", m + 1 < methods.size() ? "," : "");
  }
  std::printf("  }\n");
  std::printf("}\n");

  std::filesystem::remove_all(root);
  return 0;
}
