// Fig 9 reproduction: Pareto frontiers of synthesized multipliers for
// all five methods across the four configurations (8/16-bit x AND/MBE).
// The series to check against the paper: RL-MUL(-E) frontiers dominate
// Wallace/GOMIL/SA, with RL-MUL-E at least matching RL-MUL.

#include <cstdio>

#include "bench/harness.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();

  for (int bits : {8, 16}) {
    for (const auto ppg_kind : {ppg::PpgKind::kAnd, ppg::PpgKind::kBooth}) {
      const ppg::MultiplierSpec spec{bits, ppg_kind, false};
      bench::print_header("Fig 9: multiplier Pareto frontier, " +
                          bench::spec_name(spec));
      const auto methods = bench::run_all_methods(spec, cfg);
      for (const auto& mf : methods) {
        bench::print_frontier(mf.name, mf.front);
      }
      bench::plot_frontiers(methods);
      bench::dump_frontiers_csv("fig09_" + bench::spec_slug(spec) + ".csv",
                                methods);
      // Dominance summary: does the RL-MUL-E front cover the baselines?
      const auto& rle = methods.back().front;
      for (std::size_t m = 0; m + 1 < methods.size(); ++m) {
        int covered = 0;
        const auto pts = methods[m].front.sorted();
        for (const auto& p : pts) {
          if (rle.covered(p)) ++covered;
        }
        std::printf("RL-MUL-E covers %d/%zu of %s frontier\n", covered,
                    pts.size(), methods[m].name.c_str());
      }
    }
  }
  return 0;
}
