// Fig 8 reproduction: correlation between compressor-tree stage count
// and synthesized area/delay for 8-bit AND-based multipliers — the
// motivation for the stage-count action pruning (Section IV-C).

#include <cstdio>
#include <map>

#include "bench/harness.hpp"
#include "ct/compressor_tree.hpp"
#include "synth/synth.hpp"
#include "util/stats.hpp"

int main() {
  using namespace rlmul;
  const bench::Config cfg = bench::config();
  const ppg::MultiplierSpec spec{8, ppg::PpgKind::kAnd, false};
  bench::print_header("Fig 8: stage count vs area/delay, " +
                      bench::spec_name(spec));

  const auto trees = bench::random_trees(spec, 2 * cfg.samples, 60, 8008);
  // Each structural property at its natural operating point: minimum
  // area from fully relaxed synthesis, achievable delay from maximally
  // tight synthesis (deep trees cannot be rescued by drive strength,
  // which is exactly the penalty the paper's Fig 8 shows).
  const double relaxed = 1e9;
  const double tight = bench::delay_sweep(spec, 3).front();

  std::map<int, std::vector<double>> area_by_stage;
  std::map<int, std::vector<double>> delay_by_stage;
  std::vector<double> stages;
  std::vector<double> areas;
  std::vector<double> delays;
  for (const auto& tree : trees) {
    const int st = ct::stage_count(tree);
    const auto res_area = synth::synthesize_design(spec, tree, relaxed);
    const auto res_delay = synth::synthesize_design(spec, tree, tight);
    area_by_stage[st].push_back(res_area.area_um2);
    delay_by_stage[st].push_back(res_delay.delay_ns);
    stages.push_back(st);
    areas.push_back(res_area.area_um2);
    delays.push_back(res_delay.delay_ns);
  }

  std::printf("%-7s %-5s %-22s %-22s\n", "stages", "n", "area q1/med/q3",
              "delay q1/med/q3");
  for (const auto& [st, a] : area_by_stage) {
    const auto ab = util::box_stats(a);
    const auto db = util::box_stats(delay_by_stage[st]);
    std::printf("%-7d %-5zu %6.0f/%6.0f/%6.0f %7.3f/%7.3f/%7.3f\n", st,
                a.size(), ab.q1, ab.median, ab.q3, db.q1, db.median, db.q3);
  }
  std::printf("Pearson(stages, area)  = %.3f\n",
              util::pearson(stages, areas));
  std::printf("Pearson(stages, delay) = %.3f  (paper: both positive)\n",
              util::pearson(stages, delays));
  return 0;
}
