# Clang thread-safety analysis: -DRLMUL_THREAD_SAFETY_ANALYSIS=ON
# compiles the whole tree with -Werror=thread-safety, turning lock-
# discipline violations (unguarded access to a RLMUL_GUARDED_BY member,
# missing RLMUL_REQUIRES, lock leaks) into build failures. Requires
# Clang — the annotations in src/util/thread_annotations.hpp are no-ops
# everywhere else, so this option refuses to pretend-analyze under GCC.
#
# To prove the analysis is actually live (and not silently disabled by
# a macro or flag regression), configuration runs two probes:
#   - tsa_probe_positive.cpp: lock-disciplined code MUST compile;
#   - tsa_probe_negative.cpp: an unguarded access MUST be rejected.
# A negative probe that compiles is a hard configure error.

option(RLMUL_THREAD_SAFETY_ANALYSIS
       "Compile with Clang -Werror=thread-safety (requires Clang)" OFF)

if(RLMUL_THREAD_SAFETY_ANALYSIS)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
      "RLMUL_THREAD_SAFETY_ANALYSIS requires Clang (got "
      "${CMAKE_CXX_COMPILER_ID}); the RLMUL_* annotations are no-ops on "
      "this compiler so the analysis would silently check nothing")
  endif()

  add_compile_options(-Wthread-safety -Werror=thread-safety)
  add_compile_definitions(RLMUL_TSA_ENABLED=1)

  set(_tsa_flags
    "-DCOMPILE_DEFINITIONS:STRING=-Wthread-safety -Werror=thread-safety")
  set(_tsa_inc "-DINCLUDE_DIRECTORIES:STRING=${CMAKE_SOURCE_DIR}/src")

  try_compile(RLMUL_TSA_POSITIVE_OK
    ${CMAKE_BINARY_DIR}/tsa_probe_positive
    ${CMAKE_SOURCE_DIR}/cmake/tsa_probe_positive.cpp
    CMAKE_FLAGS ${_tsa_flags} ${_tsa_inc}
    CXX_STANDARD 20 CXX_STANDARD_REQUIRED ON
    OUTPUT_VARIABLE _tsa_pos_out)
  if(NOT RLMUL_TSA_POSITIVE_OK)
    message(FATAL_ERROR
      "thread-safety probe: correctly guarded code failed to compile "
      "under -Werror=thread-safety — the util/sync.hpp shims are broken:\n"
      "${_tsa_pos_out}")
  endif()

  try_compile(RLMUL_TSA_NEGATIVE_OK
    ${CMAKE_BINARY_DIR}/tsa_probe_negative
    ${CMAKE_SOURCE_DIR}/cmake/tsa_probe_negative.cpp
    CMAKE_FLAGS ${_tsa_flags} ${_tsa_inc}
    CXX_STANDARD 20 CXX_STANDARD_REQUIRED ON)
  if(RLMUL_TSA_NEGATIVE_OK)
    message(FATAL_ERROR
      "thread-safety probe: an UNGUARDED access to a RLMUL_GUARDED_BY "
      "member compiled cleanly — the analysis is not live (macro or "
      "flag regression in util/thread_annotations.hpp)")
  endif()
  message(STATUS
    "RLMUL_THREAD_SAFETY_ANALYSIS: live (-Werror=thread-safety; "
    "negative probe correctly rejected)")
endif()
