# Sanitizer presets: -DRLMUL_SANITIZE=<list> turns on one of the
# supported combinations. Flags are applied globally (compile + link)
# so every static library, test and bench in the tree is instrumented —
# mixing instrumented and uninstrumented TUs is how sanitizers miss
# races. Supported values:
#
#   address;undefined   the correctness build (CI job 2)
#   thread              the data-race build (CI job 3, `ctest -L tsan`)
#   leak                standalone LeakSanitizer (ASan already includes it)
#
# Runtime options (halt-on-error, suppression files) live under
# tools/sanitizers/ and are exported via ASAN_OPTIONS / UBSAN_OPTIONS /
# TSAN_OPTIONS / LSAN_OPTIONS — see tools/sanitizers/README.md.

set(RLMUL_SANITIZE "" CACHE STRING
    "Semicolon- or comma-separated sanitizers: address;undefined | thread | leak")

if(RLMUL_SANITIZE)
  string(REPLACE "," ";" _rlmul_san "${RLMUL_SANITIZE}")

  foreach(_s IN LISTS _rlmul_san)
    if(NOT _s MATCHES "^(address|undefined|thread|leak)$")
      message(FATAL_ERROR
        "RLMUL_SANITIZE: unknown sanitizer '${_s}' "
        "(supported: address, undefined, thread, leak)")
    endif()
  endforeach()

  if("thread" IN_LIST _rlmul_san AND
     ("address" IN_LIST _rlmul_san OR "leak" IN_LIST _rlmul_san))
    message(FATAL_ERROR
      "RLMUL_SANITIZE: 'thread' cannot be combined with 'address'/'leak' "
      "(the runtimes are mutually exclusive) — use separate builds")
  endif()

  string(JOIN "," _rlmul_san_joined ${_rlmul_san})
  message(STATUS "RLMUL_SANITIZE: -fsanitize=${_rlmul_san_joined}")

  # Force the flags into every target in the tree (cache-forced in the
  # sense that reconfiguring with a different RLMUL_SANITIZE fully
  # replaces them — they are derived here, never hand-edited in cache).
  add_compile_options(
    -fsanitize=${_rlmul_san_joined}
    -fno-omit-frame-pointer
    -g)
  add_link_options(-fsanitize=${_rlmul_san_joined})

  if("undefined" IN_LIST _rlmul_san)
    # Make every UBSan finding fatal at the point of detection (the
    # compile-time side of halt_on_error): a silent
    # print-and-continue UB report cannot gate CI.
    add_compile_options(-fno-sanitize-recover=undefined)
  endif()

  # Build provenance for util::build_info() / the RLMUL_BUILD line.
  add_compile_definitions(RLMUL_SANITIZERS="${_rlmul_san_joined}")

  # Sanitized builds want symbols and no aggressive inlining surprises;
  # keep the user's build type but default an unset one to RelWithDebInfo
  # (already the project default) rather than bare Release.
endif()
