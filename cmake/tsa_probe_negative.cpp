// Configure-time probe (cmake/ThreadSafety.cmake): this TU contains a
// deliberate lock-discipline violation — reading a RLMUL_GUARDED_BY
// member without holding its mutex. Under a live -Werror=thread-safety
// build it MUST fail to compile; if it ever compiles, the analysis has
// been silently disabled and configuration aborts.
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  int racy_read() { return value_; }  // BUG (intentional): mu_ not held

 private:
  rlmul::util::Mutex mu_;
  int value_ RLMUL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.racy_read();
}
