// Configure-time probe (cmake/ThreadSafety.cmake): lock-disciplined
// use of the util/sync.hpp shims must compile cleanly under
// -Werror=thread-safety. If this fails, the shim annotations broke.
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  void set(int v) {
    rlmul::util::LockGuard lock(mu_);
    value_ = v;
  }
  int get() {
    rlmul::util::LockGuard lock(mu_);
    return value_;
  }
  void wait_nonzero() {
    rlmul::util::UniqueLock lock(mu_);
    while (value_ == 0) cv_.wait(lock);
  }
  void set_locked(int v) RLMUL_REQUIRES(mu_) { value_ = v; }
  void from_caller() {
    rlmul::util::LockGuard lock(mu_);
    set_locked(7);
  }

 private:
  rlmul::util::Mutex mu_;
  rlmul::util::CondVar cv_;
  int value_ RLMUL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.set(1);
  g.from_caller();
  return g.get() == 7 ? 0 : 1;
}
