# Lint targets, all runnable locally via `cmake --build build --target
# <name>` and wired into the CI lint job:
#
#   lint          repo-specific invariants (tools/lint/check_invariants.py)
#   format-check  clang-format --dry-run --Werror (needs clang-format)
#   tidy          clang-tidy over src/ via compile_commands.json
#                 (needs clang-tidy)
#
# format-check and tidy degrade to a clear "tool not found" failure
# message instead of silently passing when the binary is missing, so a
# misconfigured CI runner cannot greenwash the check.

find_package(Python3 COMPONENTS Interpreter QUIET)
if(Python3_Interpreter_FOUND)
  set(_lint_python ${Python3_EXECUTABLE})
else()
  set(_lint_python python3)
endif()

add_custom_target(lint
  COMMAND ${_lint_python} ${CMAKE_SOURCE_DIR}/tools/lint/check_invariants.py
          --root ${CMAKE_SOURCE_DIR} --compiler ${CMAKE_CXX_COMPILER}
  WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
  COMMENT "check_invariants.py: repo-specific concurrency/style rules"
  VERBATIM)

find_program(RLMUL_CLANG_FORMAT NAMES clang-format clang-format-18
             clang-format-17 clang-format-16 clang-format-15)
if(RLMUL_CLANG_FORMAT)
  add_custom_target(format-check
    COMMAND ${CMAKE_COMMAND} -E env CLANG_FORMAT=${RLMUL_CLANG_FORMAT}
            bash ${CMAKE_SOURCE_DIR}/tools/lint/check_format.sh
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-format --dry-run --Werror over src/ tests/ bench/ examples/"
    VERBATIM)
else()
  add_custom_target(format-check
    COMMAND ${CMAKE_COMMAND} -E echo
            "format-check: clang-format not found on this machine"
    COMMAND ${CMAKE_COMMAND} -E false
    COMMENT "clang-format missing"
    VERBATIM)
endif()

find_program(RLMUL_CLANG_TIDY NAMES clang-tidy clang-tidy-18 clang-tidy-17
             clang-tidy-16 clang-tidy-15)
if(RLMUL_CLANG_TIDY)
  add_custom_target(tidy
    COMMAND ${_lint_python} ${CMAKE_SOURCE_DIR}/tools/lint/run_clang_tidy.py
            --clang-tidy ${RLMUL_CLANG_TIDY}
            --build-dir ${CMAKE_BINARY_DIR}
            --root ${CMAKE_SOURCE_DIR}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-tidy (.clang-tidy profile) over src/"
    VERBATIM)
else()
  add_custom_target(tidy
    COMMAND ${CMAKE_COMMAND} -E echo
            "tidy: clang-tidy not found on this machine"
    COMMAND ${CMAKE_COMMAND} -E false
    COMMENT "clang-tidy missing"
    VERBATIM)
endif()
