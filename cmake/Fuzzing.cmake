# Fuzzing presets, mirroring Sanitizers.cmake: -DRLMUL_FUZZ=ON builds
# the fuzz/ harnesses. Every harness is ONE translation unit exporting
# LLVMFuzzerTestOneInput, built in up to two shapes:
#
#   <name>_replay   any compiler: links fuzz/driver_main.cpp, replays
#                   the committed corpus (plus an optional deterministic
#                   mutation loop via --fuzz-seconds). Registered as
#                   ctest `fuzz_corpus_<name>` with LABELS fuzz, so
#                   corpus regression runs in every CI lane that
#                   configures with RLMUL_FUZZ=ON.
#   <name>          Clang only: the real libFuzzer binary
#                   (-fsanitize=fuzzer). Combine with
#                   -DRLMUL_SANITIZE=address;undefined for the
#                   coverage-guided CI job.
#
# The fuzz target is intentionally NOT built by default (RLMUL_FUZZ is
# OFF): harnesses link the whole library stack and would slow every
# plain build.

option(RLMUL_FUZZ
    "Build fuzz/ harnesses (corpus replay everywhere; libFuzzer under Clang)"
    OFF)

set(RLMUL_FUZZ_LIBFUZZER OFF)
if(RLMUL_FUZZ AND CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  set(RLMUL_FUZZ_LIBFUZZER ON)
endif()

if(RLMUL_FUZZ)
  if(RLMUL_FUZZ_LIBFUZZER)
    message(STATUS "RLMUL_FUZZ: libFuzzer + corpus-replay harnesses")
  else()
    message(STATUS
      "RLMUL_FUZZ: corpus-replay harnesses only "
      "(${CMAKE_CXX_COMPILER_ID} has no -fsanitize=fuzzer; use Clang "
      "for coverage-guided runs)")
  endif()
endif()

# rlmul_add_fuzzer(<name> LIBS <targets...>)
#
# Call from fuzz/CMakeLists.txt with <name>.cpp in the current source
# dir and a committed seed corpus at fuzz/corpus/<name>/ (the
# fuzz-registration lint enforces both).
function(rlmul_add_fuzzer name)
  cmake_parse_arguments(F "" "" "LIBS" ${ARGN})
  set(corpus ${CMAKE_SOURCE_DIR}/fuzz/corpus/${name})

  add_executable(${name}_replay ${name}.cpp
    ${CMAKE_SOURCE_DIR}/fuzz/driver_main.cpp)
  target_link_libraries(${name}_replay PRIVATE ${F_LIBS})

  add_test(NAME fuzz_corpus_${name} COMMAND ${name}_replay ${corpus})
  set_tests_properties(fuzz_corpus_${name} PROPERTIES
    LABELS "fuzz"
    TIMEOUT 120)

  if(RLMUL_FUZZ_LIBFUZZER)
    add_executable(${name} ${name}.cpp)
    target_compile_options(${name} PRIVATE -fsanitize=fuzzer)
    target_link_options(${name} PRIVATE -fsanitize=fuzzer)
    target_link_libraries(${name} PRIVATE ${F_LIBS})
  endif()
endfunction()
